//! Rooted spanning trees.
//!
//! The two-respect search (§4) works on a rooted spanning tree `T` of the
//! input graph: every vertex except the root has a parent, `v↓` denotes the
//! descendant set of `v` (including `v`), and the algorithm repeatedly needs
//! child counts (bough detection), subtree aggregation (1-respecting cuts),
//! and ancestor tests (guard placement).

use rayon::prelude::*;

/// Sentinel parent of the root.
pub const NO_PARENT: u32 = u32::MAX;

/// A rooted tree over vertices `0..n` in parent-array + children-CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    root: u32,
    parent: Vec<u32>,
    /// Children of `v` are `children[child_offsets[v]..child_offsets[v+1]]`
    /// (u32 offsets: the tree arrays are the densest-read state in the
    /// per-tree solve loop, so the CSR stays all-u32).
    child_offsets: Vec<u32>,
    children: Vec<u32>,
    /// Depth of each vertex (root has depth 0).
    depth: Vec<u32>,
    /// Vertices in a topological (BFS) order: every parent precedes its
    /// children. Used for top-down sweeps; reversed for bottom-up sweeps.
    bfs_order: Vec<u32>,
}

/// Reusable buffers for [`RootedTree::rebuild_from_undirected_edges`]: the
/// adjacency CSR of the incoming edge list and the BFS bookkeeping. One
/// scratch amortizes every tree construction a caller performs (the
/// per-tree loop of the top-level solver roots one spanning tree per
/// packed tree per solve).
#[derive(Clone, Debug, Default)]
pub struct TreeScratch {
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    visited: Vec<bool>,
    queue: Vec<u32>,
}

impl TreeScratch {
    /// Bytes of heap memory in active use by the scratch buffers
    /// (`len`-based, matching [`RootedTree::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        (self.adj_off.len() + self.adj.len() + self.queue.len()) * std::mem::size_of::<u32>()
            + self.visited.len() * std::mem::size_of::<bool>()
    }
}

impl RootedTree {
    /// Builds a rooted tree from a parent array (`parent[root] == NO_PARENT`).
    ///
    /// # Panics
    /// Panics if the parent array does not describe a tree rooted at `root`
    /// (wrong root sentinel, cycles, or out-of-range parents).
    pub fn from_parents(root: u32, parent: Vec<u32>) -> Self {
        let mut tree = RootedTree {
            root,
            parent,
            child_offsets: Vec::new(),
            children: Vec::new(),
            depth: Vec::new(),
            bfs_order: Vec::new(),
        };
        tree.populate_from_parents();
        tree
    }

    /// Re-derives the CSR/depth/BFS structures from `self.root` and
    /// `self.parent`, reusing every buffer in place. This is the single
    /// construction routine behind [`RootedTree::from_parents`] and the
    /// `rebuild_*` entry points, so all of them produce identical trees.
    fn populate_from_parents(&mut self) {
        let n = self.parent.len();
        let root = self.root;
        assert!((root as usize) < n, "root out of range");
        assert_eq!(
            self.parent[root as usize], NO_PARENT,
            "root must have no parent"
        );
        // Child counts, then an exclusive scan into CSR offsets.
        self.child_offsets.clear();
        self.child_offsets.resize(n + 1, 0);
        for (v, &p) in self.parent.iter().enumerate() {
            if v as u32 == root {
                continue;
            }
            assert!(
                p != NO_PARENT && (p as usize) < n,
                "vertex {v} has invalid parent"
            );
            self.child_offsets[p as usize + 1] += 1;
        }
        for v in 0..n {
            self.child_offsets[v + 1] += self.child_offsets[v];
        }
        // Scatter children using the offsets themselves as cursors, then
        // shift the advanced offsets back one slot — no cursor allocation.
        self.children.clear();
        self.children.resize(n - 1, 0);
        for (v, &p) in self.parent.iter().enumerate() {
            if v as u32 != root {
                self.children[self.child_offsets[p as usize] as usize] = v as u32;
                self.child_offsets[p as usize] += 1;
            }
        }
        for v in (1..=n).rev() {
            self.child_offsets[v] = self.child_offsets[v - 1];
        }
        self.child_offsets[0] = 0;
        // BFS to get depths and a topological order; also validates
        // reachability (a cycle would leave vertices unvisited).
        self.depth.clear();
        self.depth.resize(n, u32::MAX);
        self.bfs_order.clear();
        self.depth[root as usize] = 0;
        self.bfs_order.push(root);
        let mut head = 0;
        while head < self.bfs_order.len() {
            let v = self.bfs_order[head];
            head += 1;
            let d = self.depth[v as usize] + 1;
            let (lo, hi) = (
                self.child_offsets[v as usize] as usize,
                self.child_offsets[v as usize + 1] as usize,
            );
            for i in lo..hi {
                let c = self.children[i];
                self.depth[c as usize] = d;
                self.bfs_order.push(c);
            }
        }
        assert_eq!(self.bfs_order.len(), n, "parent array contains a cycle");
    }

    /// Builds a rooted tree from an undirected edge list by BFS from `root`.
    ///
    /// # Panics
    /// Panics if the edges do not form a spanning tree of `0..n`.
    pub fn from_undirected_edges(n: usize, edges: &[(u32, u32)], root: u32) -> Self {
        let mut tree = RootedTree::from_parents(0, vec![NO_PARENT]);
        tree.rebuild_from_undirected_edges(n, edges, root, &mut TreeScratch::default());
        tree
    }

    /// [`RootedTree::from_undirected_edges`] in place: rebuilds `self` from
    /// the edge list, reusing both this tree's buffers and the adjacency /
    /// BFS buffers of `ws`. Produces a tree identical to the allocating
    /// constructor for the same input.
    ///
    /// # Panics
    /// Panics if the edges do not form a spanning tree of `0..n`.
    pub fn rebuild_from_undirected_edges(
        &mut self,
        n: usize,
        edges: &[(u32, u32)],
        root: u32,
        ws: &mut TreeScratch,
    ) {
        assert_eq!(
            edges.len(),
            n - 1,
            "a spanning tree on {n} vertices needs {} edges",
            n - 1
        );
        ws.adj_off.clear();
        ws.adj_off.resize(n + 1, 0);
        for &(u, v) in edges {
            ws.adj_off[u as usize + 1] += 1;
            ws.adj_off[v as usize + 1] += 1;
        }
        for i in 0..n {
            ws.adj_off[i + 1] += ws.adj_off[i];
        }
        // Offsets double as cursors during the scatter, then shift back.
        ws.adj.clear();
        ws.adj.resize(2 * edges.len(), 0);
        for &(u, v) in edges {
            ws.adj[ws.adj_off[u as usize] as usize] = v;
            ws.adj_off[u as usize] += 1;
            ws.adj[ws.adj_off[v as usize] as usize] = u;
            ws.adj_off[v as usize] += 1;
        }
        for i in (1..=n).rev() {
            ws.adj_off[i] = ws.adj_off[i - 1];
        }
        ws.adj_off[0] = 0;

        self.parent.clear();
        self.parent.resize(n, NO_PARENT);
        ws.visited.clear();
        ws.visited.resize(n, false);
        ws.queue.clear();
        ws.visited[root as usize] = true;
        ws.queue.push(root);
        let mut head = 0;
        while head < ws.queue.len() {
            let v = ws.queue[head];
            head += 1;
            for &u in &ws.adj[ws.adj_off[v as usize] as usize..ws.adj_off[v as usize + 1] as usize]
            {
                if !ws.visited[u as usize] {
                    ws.visited[u as usize] = true;
                    self.parent[u as usize] = v;
                    ws.queue.push(u);
                }
            }
        }
        assert!(
            ws.visited.iter().all(|&x| x),
            "edge list does not span all vertices"
        );
        self.root = root;
        self.populate_from_parents();
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root vertex.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Parent of `v` ([`NO_PARENT`] for the root).
    pub fn parent(&self, v: u32) -> u32 {
        self.parent[v as usize]
    }

    /// Full parent array.
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Children of `v`.
    pub fn children(&self, v: u32) -> &[u32] {
        &self.children
            [self.child_offsets[v as usize] as usize..self.child_offsets[v as usize + 1] as usize]
    }

    /// Number of children of `v`.
    pub fn child_count(&self, v: u32) -> usize {
        (self.child_offsets[v as usize + 1] - self.child_offsets[v as usize]) as usize
    }

    /// Depth of `v` (root: 0).
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    /// BFS (topological) order: parents before children.
    pub fn bfs_order(&self) -> &[u32] {
        &self.bfs_order
    }

    /// True if `v` is a leaf.
    pub fn is_leaf(&self, v: u32) -> bool {
        self.child_count(v) == 0
    }

    /// Bytes of heap memory in active use by the tree's arrays (parent,
    /// children CSR, depth, BFS order). `len`-based, so the figure is a
    /// deterministic function of `n`: `n + (n+1) + (n-1) + n + n = 5n`
    /// u32 slots, i.e. `20n` bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.parent.len()
            + self.child_offsets.len()
            + self.children.len()
            + self.depth.len()
            + self.bfs_order.len())
            * std::mem::size_of::<u32>()
    }

    /// The undirected tree edges as `(parent, child)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n() as u32)
            .filter(move |&v| v != self.root)
            .map(move |v| (self.parent[v as usize], v))
    }

    /// Aggregates a per-vertex value over every subtree, bottom-up:
    /// `out[v] = value[v] + Σ_{c child of v} out[c]`.
    ///
    /// Sequential over the BFS order (`O(n)`); the parallel algorithm uses
    /// Euler-tour prefix sums instead (see [`crate::euler`]), this method is
    /// the simple reference used by tests and small phases.
    pub fn subtree_sums(&self, value: &[i64]) -> Vec<i64> {
        assert_eq!(value.len(), self.n());
        let mut out = value.to_vec();
        for &v in self.bfs_order.iter().rev() {
            let p = self.parent[v as usize];
            if p != NO_PARENT {
                out[p as usize] += out[v as usize];
            }
        }
        out
    }

    /// Subtree sizes (`|v↓|`, counting `v` itself).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        self.subtree_sums(&vec![1i64; self.n()])
            .into_iter()
            .map(|x| x as u32)
            .collect()
    }

    /// Collects the vertices of `v↓` by an explicit traversal (`O(|v↓|)`).
    pub fn descendants(&self, v: u32) -> Vec<u32> {
        let mut out = vec![v];
        let mut head = 0;
        while head < out.len() {
            let x = out[head];
            head += 1;
            out.extend_from_slice(self.children(x));
        }
        out
    }

    /// Leaves of the tree, in vertex order.
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.n() as u32)
            .into_par_iter()
            .with_min_len(4096)
            .filter(|&v| self.is_leaf(v))
            .collect()
    }
}

/// The trivial single-vertex tree — the cheapest valid placeholder for
/// arenas that rebuild a real tree in place before first use.
impl Default for RootedTree {
    fn default() -> Self {
        RootedTree::from_parents(0, vec![NO_PARENT])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     /|    \
    ///    3 4     5
    ///    |
    ///    6
    /// ```
    fn sample() -> RootedTree {
        RootedTree::from_parents(0, vec![NO_PARENT, 0, 0, 1, 1, 2, 3])
    }

    #[test]
    fn heap_bytes_exact() {
        // 5n u32 slots: parent (n) + child_offsets (n + 1) + children
        // (n − 1) + depth (n) + bfs_order (n) = 20n bytes.
        let t = sample(); // n = 7
        assert_eq!(t.heap_bytes(), 20 * 7);
        let single = RootedTree::from_parents(0, vec![NO_PARENT]);
        assert_eq!(single.heap_bytes(), 20);
    }

    #[test]
    fn structure() {
        let t = sample();
        assert_eq!(t.n(), 7);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.child_count(3), 1);
        assert!(t.is_leaf(6) && t.is_leaf(4) && t.is_leaf(5));
        assert_eq!(t.depth(6), 3);
        assert_eq!(t.leaves(), vec![4, 5, 6]);
    }

    #[test]
    fn bfs_order_is_topological() {
        let t = sample();
        let pos: Vec<usize> = {
            let mut p = vec![0; t.n()];
            for (i, &v) in t.bfs_order().iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for (p, c) in t.edges() {
            assert!(pos[p as usize] < pos[c as usize]);
        }
    }

    #[test]
    fn subtree_sums_and_sizes() {
        let t = sample();
        assert_eq!(t.subtree_sizes(), vec![7, 4, 2, 2, 1, 1, 1]);
        let vals = vec![1i64, 2, 3, 4, 5, 6, 7];
        let sums = t.subtree_sums(&vals);
        assert_eq!(sums[6], 7);
        assert_eq!(sums[3], 11);
        assert_eq!(sums[1], 18);
        assert_eq!(sums[0], 28);
    }

    #[test]
    fn descendants_collects_subtree() {
        let t = sample();
        let mut d = t.descendants(1);
        d.sort_unstable();
        assert_eq!(d, vec![1, 3, 4, 6]);
    }

    #[test]
    fn from_undirected_edges_roundtrip() {
        let edges = vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 6)];
        let t = RootedTree::from_undirected_edges(7, &edges, 0);
        assert_eq!(t.parent(6), 3);
        assert_eq!(t.parent(5), 2);
        assert_eq!(t.depth(6), 3);
    }

    #[test]
    fn rebuild_matches_allocating_constructor() {
        // One tree + one scratch reused across many shapes and sizes; every
        // rebuild must be structurally identical to a fresh construction.
        let mut tree = RootedTree::default();
        let mut ws = TreeScratch::default();
        type Shape = (usize, Vec<(u32, u32)>, u32);
        let shapes: Vec<Shape> = vec![
            (7, vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 6)], 0),
            (4, vec![(3, 2), (2, 1), (1, 0)], 3),
            (1, vec![], 0),
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)], 2),
            (6, vec![(5, 0), (4, 1), (0, 4), (1, 2), (2, 3)], 5),
        ];
        for (n, edges, root) in shapes {
            tree.rebuild_from_undirected_edges(n, &edges, root, &mut ws);
            let want = RootedTree::from_undirected_edges(n, &edges, root);
            assert_eq!(tree, want, "n={n} root={root}");
            assert_eq!(tree.bfs_order(), want.bfs_order());
        }
    }

    #[test]
    #[should_panic(expected = "does not span")]
    fn rebuild_rejects_non_spanning_edges() {
        let mut tree = RootedTree::default();
        let mut ws = TreeScratch::default();
        // 4 vertices, 3 edges, but vertex 3 is attached to nothing and
        // (0,1) appears twice.
        tree.rebuild_from_undirected_edges(4, &[(0, 1), (0, 1), (1, 2)], 0, &mut ws);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cycle() {
        // 1 and 2 point at each other; unreachable from root 0.
        let _ = RootedTree::from_parents(0, vec![NO_PARENT, 2, 1]);
    }

    #[test]
    fn single_vertex_tree() {
        let t = RootedTree::from_parents(0, vec![NO_PARENT]);
        assert_eq!(t.n(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.subtree_sizes(), vec![1]);
    }

    #[test]
    fn path_tree() {
        let n = 100;
        let mut parent = vec![NO_PARENT; n];
        for v in 1..n {
            parent[v] = (v - 1) as u32;
        }
        let t = RootedTree::from_parents(0, parent);
        assert_eq!(t.depth((n - 1) as u32), (n - 1) as u32);
        assert_eq!(t.leaves(), vec![(n - 1) as u32]);
    }
}
