//! Workload generators.
//!
//! The paper has no experimental section, so the benchmark workloads are
//! chosen to exercise the claims: sparse random multigraphs for the
//! near-linear work bound, planted-cut families with *known* minimum cut for
//! correctness-rate experiments, and adversarial tree shapes (paths,
//! caterpillars, brooms, stars) for the decomposition lemmas.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, Weight};

/// A connected random multigraph: a uniform random spanning tree skeleton
/// plus `m - (n-1)` uniform random non-loop edges, weights uniform in
/// `1..=max_w`.
///
/// # Panics
/// Panics if `m < n - 1` or `n == 0`.
pub fn gnm_connected(n: usize, m: usize, max_w: Weight, seed: u64) -> Graph {
    gnm_with(n, m, seed, |rng| rng.gen_range(1..=max_w))
}

/// The shared connected-multigraph construction behind [`gnm_connected`]
/// and [`gnm_heavy_tailed`]: a random attachment tree (keeps diameter
/// small yet irregular) plus uniform random non-loop fill edges, each
/// weighted by one `weight` draw at the moment the edge is placed.
fn gnm_with(
    n: usize,
    m: usize,
    seed: u64,
    mut weight: impl FnMut(&mut SmallRng) -> Weight,
) -> Graph {
    assert!(n >= 1);
    assert!(m + 1 >= n, "need at least n-1 edges for connectivity");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32, Weight)> = Vec::with_capacity(m);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        let w = weight(&mut rng);
        edges.push((p as u32, v as u32, w));
    }
    while edges.len() < m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            let w = weight(&mut rng);
            edges.push((u, v, w));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// A graph with a *provably known* minimum cut.
///
/// Two sides `A = 0..n_a` and `B = n_a..n_a+n_b`, each wired as a
/// Hamiltonian cycle of per-edge weight `inner_w` plus `chords` random
/// chords of weight `inner_w`; the sides are joined by `cross` edges of
/// total weight strictly less than `2 * inner_w`.
///
/// Guarantee: any cut splitting a side costs at least two cycle edges
/// (`>= 2 * inner_w`), so the unique minimum cut is the (A, B) bipartition
/// with value = total cross weight. Returned alongside the graph.
pub fn planted_bisection(
    n_a: usize,
    n_b: usize,
    inner_w: Weight,
    cross: usize,
    chords: usize,
    seed: u64,
) -> (Graph, u64, Vec<bool>) {
    assert!(n_a >= 3 && n_b >= 3, "sides need >= 3 vertices for cycles");
    assert!(cross >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = n_a + n_b;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    // Per-cross-edge weight, sized so the planted cut is strictly minimum.
    let budget = 2 * inner_w - 1;
    let cross_w = (budget / cross as u64).max(1);
    let cross_used = cross.min(budget as usize);
    let planted_value = cross_w * cross_used as u64;
    assert!(planted_value < 2 * inner_w);
    for side in 0..2 {
        let (lo, len) = if side == 0 { (0, n_a) } else { (n_a, n_b) };
        for i in 0..len {
            let u = (lo + i) as u32;
            let v = (lo + (i + 1) % len) as u32;
            edges.push((u, v, inner_w));
        }
        for _ in 0..chords {
            let u = (lo + rng.gen_range(0..len)) as u32;
            let v = (lo + rng.gen_range(0..len)) as u32;
            if u != v {
                edges.push((u, v, inner_w));
            }
        }
    }
    for _ in 0..cross_used {
        let u = rng.gen_range(0..n_a) as u32;
        let v = (n_a + rng.gen_range(0..n_b)) as u32;
        edges.push((u, v, cross_w));
    }
    // Shuffle so edge ids carry no structural information (deterministic
    // tie-breaks downstream would otherwise favour intra-side edges).
    use rand::seq::SliceRandom;
    edges.shuffle(&mut rng);
    let side: Vec<bool> = (0..n).map(|v| v < n_a).collect();
    let g = Graph::from_edges(n, &edges).unwrap();
    debug_assert_eq!(g.cut_value(&side), planted_value);
    (g, planted_value, side)
}

/// A cycle on `n` vertices with `chords` extra random chords; all weights 1.
/// Without chords the minimum cut is exactly 2.
pub fn cycle_with_chords(n: usize, chords: usize, seed: u64) -> Graph {
    assert!(n >= 3);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32, Weight)> = (0..n)
        .map(|i| (i as u32, ((i + 1) % n) as u32, 1))
        .collect();
    for _ in 0..chords {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            edges.push((u, v, 1));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// A `rows × cols` grid with unit weights. Minimum cut is
/// `min(rows, cols)`-ish for squares; corners give degree-2 cuts.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), 1));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), 1));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).unwrap()
}

/// Complete graph `K_n` with weights uniform in `1..=max_w`.
pub fn complete(n: usize, max_w: Weight, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as u32, v as u32, rng.gen_range(1..=max_w)));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// Two cliques of size `k` (unit weights) joined by a single unit edge —
/// minimum cut 1 by construction (for `k >= 3`).
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 2);
    let mut edges = Vec::new();
    for side in 0..2u32 {
        let lo = side * k as u32;
        for u in 0..k as u32 {
            for v in (u + 1)..k as u32 {
                edges.push((lo + u, lo + v, 1));
            }
        }
    }
    edges.push((0, k as u32, 1));
    Graph::from_edges(2 * k, &edges).unwrap()
}

/// The `d`-dimensional hypercube `Q_d` (unit weights): `2^d` vertices,
/// `d · 2^{d-1}` edges, minimum cut exactly `d` (isolate any vertex).
pub fn hypercube(d: u32) -> Graph {
    assert!((1..=20).contains(&d));
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(d as usize * n / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                edges.push((v as u32, u as u32, 1));
            }
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// A `rows × cols` torus (wrap-around grid, unit weights): 4-regular, so
/// the minimum cut is 4 for `rows, cols ≥ 3` (vertex isolation); smaller
/// wrap dimensions create parallel edges, which the library supports.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols), 1));
            edges.push((id(r, c), id((r + 1) % rows, c), 1));
        }
    }
    Graph::from_edges(rows * cols, &edges).unwrap()
}

/// A wheel: hub 0 connected to an `n−1`-cycle of rim vertices. With unit
/// weights the minimum cut is 3 (isolate a rim vertex).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4);
    let rim = n - 1;
    let mut edges = Vec::with_capacity(2 * rim);
    for i in 0..rim {
        let v = (1 + i) as u32;
        let next = (1 + (i + 1) % rim) as u32;
        edges.push((v, next, 1));
        edges.push((0, v, 1));
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// `communities` equally-sized dense groups (ring + chords at weight
/// `inner_w`) joined in a ring of light bridges — a multi-way analogue of
/// [`planted_bisection`] used by the clustering example and tests. Returns
/// the graph and the community label per vertex. Every bridge has weight
/// 1, so separating one community costs exactly 2 (its two bridges) when
/// `inner_w ≥ 2`.
pub fn community_ring(
    communities: usize,
    size: usize,
    inner_w: Weight,
    seed: u64,
) -> (Graph, Vec<u32>) {
    assert!(communities >= 2 && size >= 3 && inner_w >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = communities * size;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    let mut label = vec![0u32; n];
    for c in 0..communities {
        let lo = c * size;
        for i in 0..size {
            label[lo + i] = c as u32;
            edges.push(((lo + i) as u32, (lo + (i + 1) % size) as u32, inner_w));
        }
        for _ in 0..size {
            let a = (lo + rng.gen_range(0..size)) as u32;
            let b = (lo + rng.gen_range(0..size)) as u32;
            if a != b {
                edges.push((a, b, inner_w));
            }
        }
        // One bridge to the next community (ring of communities).
        let next = (c + 1) % communities;
        let a = (lo + rng.gen_range(0..size)) as u32;
        let b = (next * size + rng.gen_range(0..size)) as u32;
        edges.push((a, b, 1));
    }
    edges.shuffle(&mut rng);
    (Graph::from_edges(n, &edges).unwrap(), label)
}

use rand::seq::SliceRandom;

// ---------------------------------------------------------------------------
// Adversarial families for the differential scenario corpus. Each targets a
// structural regime the randomized solvers could plausibly mishandle:
// uniform degrees (no weak vertex to latch onto), power-law degrees (hub
// domination), heavy-tailed weights (skewed packing rates), near-disconnected
// bridges (cut value far below every degree), and contracted multigraphs
// (parallel edges, the paper's intermediate representation).
// ---------------------------------------------------------------------------

/// A random `d`-regular multigraph via the configuration (pairing) model:
/// `d` stubs per vertex, paired uniformly; pairings with self-loops are
/// rejected and resampled, parallel edges are kept. Unit weights, so every
/// weighted degree is exactly `d`. Deterministically retries derived seeds
/// until the sample is connected (almost every sample is, for `d >= 3`).
///
/// # Panics
/// Panics if `n < 2`, `d < 2`, `d >= n` is allowed (multigraph), or
/// `n * d` is odd (no perfect pairing exists).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(n >= 2 && d >= 2, "need n >= 2 and d >= 2");
    assert!(
        (n * d).is_multiple_of(2),
        "n * d must be even for a pairing to exist"
    );
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    for attempt in 0..10_000u64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
        stubs.shuffle(&mut rng);
        if stubs.chunks_exact(2).any(|p| p[0] == p[1]) {
            continue;
        }
        let edges: Vec<(u32, u32, Weight)> =
            stubs.chunks_exact(2).map(|p| (p[0], p[1], 1)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        if crate::components::is_connected(&g) {
            return g;
        }
    }
    panic!("random_regular({n}, {d}): no connected pairing found (d too small?)");
}

/// Preferential attachment (Barabási–Albert): a seed clique on
/// `attach + 1` vertices, then each new vertex connects `attach` unit
/// edges to existing vertices sampled proportionally to current degree.
/// Produces power-law degrees — a few hubs carry most of the edges, so
/// vertex-isolation cuts vary over orders of magnitude. Connected by
/// construction; parallel edges possible and kept.
///
/// # Panics
/// Panics if `attach < 1` or `n <= attach + 1`.
pub fn preferential_attachment(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(attach >= 1, "attach must be >= 1");
    assert!(n > attach + 1, "need n > attach + 1 for the seed clique");
    let mut rng = SmallRng::seed_from_u64(seed);
    let m0 = attach + 1;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    // One endpoint entry per edge side: sampling uniformly from this list
    // is sampling vertices proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::new();
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            edges.push((u as u32, v as u32, 1));
            endpoints.push(u as u32);
            endpoints.push(v as u32);
        }
    }
    for v in m0..n {
        // Sample all of v's targets before adding v to the pool — v must
        // never attach to itself.
        let targets: Vec<u32> = (0..attach)
            .map(|_| endpoints[rng.gen_range(0..endpoints.len())])
            .collect();
        for t in targets {
            edges.push((v as u32, t, 1));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

/// A connected random multigraph like [`gnm_connected`], but with
/// heavy-tailed weights `2^k` for `k` uniform in `0..=10` — three orders
/// of magnitude of skew, stressing weight-proportional choices (packing
/// rates, contraction sampling) that uniform weights never exercise.
///
/// # Panics
/// Panics if `m < n - 1` or `n == 0`.
pub fn gnm_heavy_tailed(n: usize, m: usize, seed: u64) -> Graph {
    gnm_with(n, m, seed, |rng| 1u64 << rng.gen_range(0..11u32))
}

/// A near-disconnected graph: two random blobs (cycle + `chords` chords,
/// all at weight `2 * bridge_w`) joined by a single bridge of weight
/// `bridge_w`. Any cut splitting a blob costs at least two blob edges
/// (`4 * bridge_w`), so the minimum cut is exactly the bridge. Returns the
/// graph and its exact minimum cut value (`bridge_w`).
///
/// # Panics
/// Panics if `side < 3` or `bridge_w == 0`.
pub fn bridge_graph(side: usize, chords: usize, bridge_w: Weight, seed: u64) -> (Graph, u64) {
    assert!(side >= 3, "blobs need >= 3 vertices for cycles");
    assert!(bridge_w >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let inner_w = 2 * bridge_w;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    for blob in 0..2 {
        let lo = blob * side;
        for i in 0..side {
            let u = (lo + i) as u32;
            let v = (lo + (i + 1) % side) as u32;
            edges.push((u, v, inner_w));
        }
        for _ in 0..chords {
            let a = (lo + rng.gen_range(0..side)) as u32;
            let b = (lo + rng.gen_range(0..side)) as u32;
            if a != b {
                edges.push((a, b, inner_w));
            }
        }
    }
    let a = rng.gen_range(0..side) as u32;
    let b = (side + rng.gen_range(0..side)) as u32;
    edges.push((a, b, bridge_w));
    edges.shuffle(&mut rng);
    (Graph::from_edges(2 * side, &edges).unwrap(), bridge_w)
}

/// A contracted-multigraph stress case: a random connected base graph on
/// `n_base` vertices and `m_base` edges quotiented down to `k` super
/// vertices by a random surjective mapping. Self-loops are dropped and
/// parallel edges kept, exactly as in the paper's bough-phase cascade —
/// the resulting dense multigraph is the representation the contraction
/// pipeline works on internally.
///
/// # Panics
/// Panics if `k < 2`, `n_base < k`, or `m_base < n_base - 1`.
pub fn contracted_multigraph(n_base: usize, m_base: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 2 && n_base >= k);
    let base = gnm_connected(n_base, m_base, 8, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC04_7AC7);
    // First k vertices pin their own class (surjectivity); the rest land
    // uniformly.
    let mapping: Vec<u32> = (0..n_base)
        .map(|v| {
            if v < k {
                v as u32
            } else {
                rng.gen_range(0..k) as u32
            }
        })
        .collect();
    crate::contract::contract(&base, &mapping, k)
}

// ---------------------------------------------------------------------------
// Tree-shape generators (for decomposition / MinPath experiments). These
// return parent arrays suitable for `RootedTree::from_parents`.
// ---------------------------------------------------------------------------

use crate::tree::{RootedTree, NO_PARENT};

/// Uniform random attachment tree on `n` vertices rooted at 0.
pub fn random_tree(n: usize, seed: u64) -> RootedTree {
    assert!(n >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parent = vec![NO_PARENT; n];
    for v in 1..n {
        parent[v] = rng.gen_range(0..v) as u32;
    }
    RootedTree::from_parents(0, parent)
}

/// A path `0 - 1 - … - n-1` rooted at 0 (single bough; worst case for
/// decomposition depth heuristics).
pub fn path_tree(n: usize) -> RootedTree {
    assert!(n >= 1);
    let mut parent = vec![NO_PARENT; n];
    for v in 1..n {
        parent[v] = (v - 1) as u32;
    }
    RootedTree::from_parents(0, parent)
}

/// A star: root 0 with `n - 1` leaf children (every leaf is its own bough).
pub fn star_tree(n: usize) -> RootedTree {
    assert!(n >= 1);
    let mut parent = vec![NO_PARENT; n];
    for v in 1..n {
        parent[v] = 0;
    }
    RootedTree::from_parents(0, parent)
}

/// A caterpillar: a spine of length `spine` with `legs` leaves per spine
/// vertex. Exercises many tiny boughs hanging off one long chain.
pub fn caterpillar_tree(spine: usize, legs: usize) -> RootedTree {
    assert!(spine >= 1);
    let n = spine + spine * legs;
    let mut parent = vec![NO_PARENT; n];
    for s in 1..spine {
        parent[s] = (s - 1) as u32;
    }
    for s in 0..spine {
        for l in 0..legs {
            parent[spine + s * legs + l] = s as u32;
        }
    }
    RootedTree::from_parents(0, parent)
}

/// A balanced binary tree on `n` vertices (vertex `v`'s parent is
/// `(v-1)/2`). Logarithmic depth, maximally branching.
pub fn balanced_binary_tree(n: usize) -> RootedTree {
    assert!(n >= 1);
    let mut parent = vec![NO_PARENT; n];
    for v in 1..n {
        parent[v] = ((v - 1) / 2) as u32;
    }
    RootedTree::from_parents(0, parent)
}

/// A broom: a path of length `handle` ending in `bristles` leaves.
/// One long bough plus a fan — stresses the phase recursion.
pub fn broom_tree(handle: usize, bristles: usize) -> RootedTree {
    assert!(handle >= 1);
    let n = handle + bristles;
    let mut parent = vec![NO_PARENT; n];
    for v in 1..handle {
        parent[v] = (v - 1) as u32;
    }
    for b in 0..bristles {
        parent[handle + b] = (handle - 1) as u32;
    }
    RootedTree::from_parents(0, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn gnm_is_connected_with_right_counts() {
        let g = gnm_connected(100, 300, 10, 1);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 300);
        assert!(is_connected(&g));
    }

    #[test]
    fn gnm_tree_only() {
        let g = gnm_connected(50, 49, 5, 2);
        assert_eq!(g.m(), 49);
        assert!(is_connected(&g));
    }

    #[test]
    fn planted_cut_is_minimum_for_small_cases() {
        let (g, value, side) = planted_bisection(6, 7, 10, 3, 4, 3);
        assert_eq!(g.cut_value(&side), value);
        assert!(value < 20);
        // Exhaustively verify on this small instance.
        let n = g.n();
        let mut best = u64::MAX;
        for mask in 1..(1u32 << n) - 1 {
            let s: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
            best = best.min(g.cut_value(&s));
        }
        assert_eq!(best, value);
    }

    #[test]
    fn cycle_min_cut_is_two() {
        let g = cycle_with_chords(20, 0, 4);
        assert_eq!(g.m(), 20);
        // Check one adjacent-pair cut has value 2.
        let mut side = vec![false; 20];
        side[3] = true;
        side[4] = true;
        assert_eq!(g.cut_value(&side), 2);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_min_cut_one() {
        let g = barbell(5);
        let side: Vec<bool> = (0..10).map(|v| v < 5).collect();
        assert_eq!(g.cut_value(&side), 1);
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(8, 3, 9);
        assert_eq!(g.m(), 28);
    }

    #[test]
    fn tree_generators_shapes() {
        assert_eq!(path_tree(10).leaves().len(), 1);
        assert_eq!(star_tree(10).leaves().len(), 9);
        let cat = caterpillar_tree(5, 3);
        assert_eq!(cat.n(), 20);
        assert_eq!(cat.leaves().len(), 15); // every leg is a leaf
        let bin = balanced_binary_tree(15);
        assert_eq!(bin.depth(14), 3);
        let broom = broom_tree(4, 6);
        assert_eq!(broom.n(), 10);
        assert_eq!(broom.children(3).len(), 6);
        let rt = random_tree(500, 7);
        assert_eq!(rt.n(), 500);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!(is_connected(&g));
        // Isolating any vertex cuts exactly d = 4.
        let mut side = vec![false; 16];
        side[5] = true;
        assert_eq!(g.cut_value(&side), 4);
    }

    #[test]
    fn torus_is_four_regular() {
        let g = torus(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        for v in 0..20u32 {
            assert_eq!(g.weighted_degree(v), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn wheel_rim_cut() {
        let g = wheel(10);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 18);
        let mut side = vec![false; 10];
        side[3] = true; // a rim vertex: 2 rim edges + 1 spoke
        assert_eq!(g.cut_value(&side), 3);
    }

    #[test]
    fn community_ring_structure() {
        let (g, label) = community_ring(4, 8, 5, 3);
        assert_eq!(g.n(), 32);
        assert!(is_connected(&g));
        assert_eq!(label.iter().filter(|&&l| l == 2).count(), 8);
        // Cutting one community costs its two bridges.
        let side: Vec<bool> = label.iter().map(|&l| l == 0).collect();
        assert_eq!(g.cut_value(&side), 2);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gnm_connected(60, 120, 9, 42);
        let b = gnm_connected(60, 120, 9, 42);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        for (n, d, seed) in [(20, 3, 1u64), (30, 4, 2), (17, 6, 3)] {
            let g = random_regular(n, d, seed);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n * d / 2);
            for v in 0..n as u32 {
                assert_eq!(g.weighted_degree(v), d as u64, "vertex {v}");
            }
            assert!(is_connected(&g));
        }
        let a = random_regular(24, 4, 9);
        let b = random_regular(24, 4, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(50, 3, 4);
        assert_eq!(g.n(), 50);
        // Seed clique K_4 (6 edges) + 3 per later vertex.
        assert_eq!(g.m(), 6 + 3 * 46);
        assert!(is_connected(&g));
        // Power law: the max degree dwarfs the attach count.
        let max_deg = (0..50u32).map(|v| g.weighted_degree(v)).max().unwrap();
        assert!(max_deg >= 8, "no hub emerged: max degree {max_deg}");
    }

    #[test]
    fn heavy_tailed_weights_span_orders_of_magnitude() {
        let g = gnm_heavy_tailed(60, 180, 7);
        assert_eq!(g.n(), 60);
        assert_eq!(g.m(), 180);
        assert!(is_connected(&g));
        let min_w = g.edges().iter().map(|e| e.w).min().unwrap();
        let max_w = g.edges().iter().map(|e| e.w).max().unwrap();
        assert!(
            min_w <= 2 && max_w >= 256,
            "tail too thin: {min_w}..{max_w}"
        );
        assert!(g.edges().iter().all(|e| e.w.is_power_of_two()));
    }

    #[test]
    fn bridge_graph_cut_is_the_bridge() {
        let (g, value) = bridge_graph(8, 5, 3, 11);
        assert_eq!(g.n(), 16);
        assert_eq!(value, 3);
        let side: Vec<bool> = (0..16).map(|v| v < 8).collect();
        assert_eq!(g.cut_value(&side), 3);
        // Exhaustive check that no cut beats the bridge.
        let mut best = u64::MAX;
        for mask in 1..(1u32 << 16) - 1 {
            let s: Vec<bool> = (0..16).map(|v| mask >> v & 1 == 1).collect();
            best = best.min(g.cut_value(&s));
        }
        assert_eq!(best, 3);
    }

    #[test]
    fn contracted_multigraph_keeps_parallel_edges() {
        let g = contracted_multigraph(40, 120, 8, 5);
        assert_eq!(g.n(), 8);
        assert!(is_connected(&g));
        assert!(g.edges().iter().all(|e| e.u != e.v), "self-loop survived");
        // Quotienting 120 edges onto 8 classes must produce parallels.
        let mut pairs: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .map(|e| (e.u.min(e.v), e.u.max(e.v)))
            .collect();
        pairs.sort_unstable();
        let distinct = {
            pairs.dedup();
            pairs.len()
        };
        assert!(distinct < g.m(), "no parallel edges in the quotient");
    }
}
