//! Undirected weighted multigraph.
//!
//! The paper's input model: `n` vertices, `m` edges, positive integral edge
//! weights (`w : E → N⁺`). Parallel edges are allowed everywhere — the
//! bough-phase contraction cascade explicitly keeps them ("it is not
//! necessary to combine parallel edges", §4.3) — and self-loops are rejected
//! at construction but silently dropped by contraction (a contracted
//! self-loop never crosses any cut).

use rayon::prelude::*;

/// Edge weight type. Weights are positive integers as in the paper; all cut
/// arithmetic is done in `i64` with headroom for the `±INF` guard values
/// used by the two-respect reduction, so the library requires the *total*
/// graph weight to stay below `2^40`.
pub type Weight = u64;

/// Hard bound on total graph weight enforced by [`Graph::from_edges`].
pub const MAX_TOTAL_WEIGHT: u64 = 1 << 40;

/// An undirected weighted edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// Positive weight.
    pub w: Weight,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(u: u32, v: u32, w: Weight) -> Self {
        Edge { u, v, w }
    }

    /// Given one endpoint, returns the other.
    pub fn other(&self, x: u32) -> u32 {
        debug_assert!(x == self.u || x == self.v);
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }
}

/// Errors raised by graph construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    EndpointOutOfRange { edge_index: usize },
    /// An edge connects a vertex to itself.
    SelfLoop { edge_index: usize },
    /// An edge has zero weight (the paper requires `w : E → N⁺`).
    ZeroWeight { edge_index: usize },
    /// The total weight exceeds [`MAX_TOTAL_WEIGHT`].
    TotalWeightOverflow,
    /// The graph has no vertices.
    Empty,
    /// A mutation named an edge id `>= m`.
    EdgeIdOutOfRange { edge_id: usize },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { edge_index } => {
                write!(f, "edge {edge_index} has an endpoint out of range")
            }
            GraphError::SelfLoop { edge_index } => {
                write!(f, "edge {edge_index} is a self-loop")
            }
            GraphError::ZeroWeight { edge_index } => {
                write!(
                    f,
                    "edge {edge_index} has zero weight (weights must be positive)"
                )
            }
            GraphError::TotalWeightOverflow => {
                write!(f, "total edge weight exceeds 2^40")
            }
            GraphError::Empty => write!(f, "graph must have at least one vertex"),
            GraphError::EdgeIdOutOfRange { edge_id } => {
                write!(f, "edge id {edge_id} is out of range")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected weighted multigraph in edge-list + CSR adjacency form.
///
/// The CSR stores, for each vertex, the indices of its incident edges; an
/// edge appears in both endpoints' lists. This is the access pattern the
/// algorithm needs: bough walks enumerate "every edge incident to y".
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// CSR offsets (u32 — half the bytes of `usize` offsets, and the hot
    /// bough walks stream this array): incident edge ids of vertex `v` are
    /// `adj_edge_ids[adj_offsets[v]..adj_offsets[v + 1]]`.
    adj_offsets: Vec<u32>,
    adj_edge_ids: Vec<u32>,
    total_weight: u64,
    /// Cached weighted degree per vertex, filled at construction — hot
    /// loops (the Nagamochi–Ibaraki sweep, skeleton rate search) read
    /// degrees constantly and must not re-sum neighbor lists.
    degrees: Vec<u64>,
    min_degree: u64,
}

impl Graph {
    /// Builds a graph from `(u, v, w)` triples, validating endpoints,
    /// weights, and the total-weight budget.
    pub fn from_edges(n: usize, triples: &[(u32, u32, Weight)]) -> Result<Self, GraphError> {
        let edges: Vec<Edge> = triples
            .iter()
            .map(|&(u, v, w)| Edge::new(u, v, w))
            .collect();
        Self::from_edge_structs(n, edges)
    }

    /// Builds a graph from pre-constructed [`Edge`] values. The vector is
    /// installed directly (no copy).
    pub fn from_edge_structs(n: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        let mut g = Graph {
            n: 1,
            edges,
            adj_offsets: Vec::new(),
            adj_edge_ids: Vec::new(),
            total_weight: 0,
            degrees: Vec::new(),
            min_degree: 0,
        };
        g.reindex(n)?;
        Ok(g)
    }

    /// Rebuilds this graph in place from new content, reusing every
    /// internal buffer (edge list, CSR arrays, degree cache) — the
    /// zero-allocation counterpart of [`Graph::from_edge_structs`] for
    /// repeated-solve paths that recycle a `Graph` value as an output
    /// arena (contraction cascades, certificate sparsification).
    ///
    /// Validation is identical to construction. On `Err` the graph is left
    /// in an unspecified (but memory-safe) state and must be rebuilt again
    /// before use.
    pub fn rebuild_from_edges<I>(&mut self, n: usize, new_edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        self.edges.clear();
        self.edges.extend(new_edges);
        self.reindex(n)
    }

    /// Validates `self.edges` against `n` and rebuilds the derived state
    /// (CSR adjacency, total weight, degree cache) into the existing
    /// buffers. Shared by construction and in-place rebuild.
    fn reindex(&mut self, n: usize) -> Result<(), GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut total: u64 = 0;
        for (i, e) in self.edges.iter().enumerate() {
            if e.u as usize >= n || e.v as usize >= n {
                return Err(GraphError::EndpointOutOfRange { edge_index: i });
            }
            if e.u == e.v {
                return Err(GraphError::SelfLoop { edge_index: i });
            }
            if e.w == 0 {
                return Err(GraphError::ZeroWeight { edge_index: i });
            }
            total = total
                .checked_add(e.w)
                .ok_or(GraphError::TotalWeightOverflow)?;
        }
        if total > MAX_TOTAL_WEIGHT {
            return Err(GraphError::TotalWeightOverflow);
        }
        // The u32 CSR stores 2m entries and offsets up to 2m.
        assert!(
            self.edges.len() <= (u32::MAX / 2) as usize,
            "edge count exceeds u32 CSR capacity"
        );
        self.n = n;
        self.total_weight = total;
        build_csr_degrees_into(
            n,
            &self.edges,
            &mut self.adj_offsets,
            &mut self.adj_edge_ids,
            &mut self.degrees,
        );
        self.min_degree = self.degrees.iter().copied().min().unwrap_or(0);
        Ok(())
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges counted individually).
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Edge ids incident to `v` (each parallel edge separately; an edge
    /// between `u` and `v` appears in both lists).
    pub fn incident_edge_ids(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.adj_edge_ids[self.adj_offsets[v] as usize..self.adj_offsets[v + 1] as usize]
    }

    /// Iterates `(neighbor, weight, edge_id)` for all edges incident to `v`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, Weight, u32)> + '_ {
        self.incident_edge_ids(v).iter().map(move |&eid| {
            let e = &self.edges[eid as usize];
            (e.other(v), e.w, eid)
        })
    }

    /// Weighted degree of `v` — `O(1)`, served from the degree cache built
    /// at construction.
    pub fn weighted_degree(&self, v: u32) -> u64 {
        self.degrees[v as usize]
    }

    /// Weighted degrees of all vertices — the cached array, `O(1)`.
    pub fn weighted_degrees(&self) -> &[u64] {
        &self.degrees
    }

    /// The minimum weighted degree — a cheap upper bound on the minimum cut
    /// (used to seed the skeleton sampling-rate search). Cached; `O(1)`.
    pub fn min_weighted_degree(&self) -> u64 {
        self.min_degree
    }

    /// Bytes of heap memory in *active use* by this graph's buffers: edge
    /// list, CSR adjacency, and degree cache. Counts `len`, not `capacity`
    /// — the figure is a deterministic function of the graph shape, which
    /// is what byte-budgeted cache admission needs.
    pub fn heap_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
            + (self.adj_offsets.len() + self.adj_edge_ids.len()) * std::mem::size_of::<u32>()
            + self.degrees.len() * std::mem::size_of::<u64>()
    }

    /// Changes the weight of edge `eid` in place, returning the old
    /// weight. `O(1)` on the edge list and degree cache — the CSR stores
    /// edge *ids*, so adjacency is untouched; only the min-degree cache
    /// needs an `O(n)` re-scan. Validation matches construction (positive
    /// weight, total-weight budget); on `Err` the graph is unchanged.
    pub fn reweight_edge(&mut self, eid: usize, w: Weight) -> Result<Weight, GraphError> {
        let old = self
            .edges
            .get(eid)
            .ok_or(GraphError::EdgeIdOutOfRange { edge_id: eid })?
            .w;
        if w == 0 {
            return Err(GraphError::ZeroWeight { edge_index: eid });
        }
        let total = (self.total_weight - old)
            .checked_add(w)
            .ok_or(GraphError::TotalWeightOverflow)?;
        if total > MAX_TOTAL_WEIGHT {
            return Err(GraphError::TotalWeightOverflow);
        }
        let Edge { u, v, .. } = self.edges[eid];
        self.edges[eid].w = w;
        self.total_weight = total;
        self.degrees[u as usize] = self.degrees[u as usize] - old + w;
        self.degrees[v as usize] = self.degrees[v as usize] - old + w;
        self.min_degree = self.degrees.iter().copied().min().unwrap_or(0);
        Ok(old)
    }

    /// Appends a new edge, returning its id (always the new `m - 1`;
    /// existing edge ids are stable). Validation matches construction; on
    /// `Err` the graph is unchanged. Rebuilds the CSR adjacency and degree
    /// cache in place — `O(n + m)`.
    pub fn add_edge(&mut self, u: u32, v: u32, w: Weight) -> Result<u32, GraphError> {
        let edge_index = self.edges.len();
        if u as usize >= self.n || v as usize >= self.n {
            return Err(GraphError::EndpointOutOfRange { edge_index });
        }
        if u == v {
            return Err(GraphError::SelfLoop { edge_index });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { edge_index });
        }
        let total = self
            .total_weight
            .checked_add(w)
            .ok_or(GraphError::TotalWeightOverflow)?;
        if total > MAX_TOTAL_WEIGHT {
            return Err(GraphError::TotalWeightOverflow);
        }
        assert!(
            edge_index < (u32::MAX / 2) as usize,
            "edge count exceeds u32 CSR capacity"
        );
        self.edges.push(Edge::new(u, v, w));
        self.total_weight = total;
        build_csr_degrees_into(
            self.n,
            &self.edges,
            &mut self.adj_offsets,
            &mut self.adj_edge_ids,
            &mut self.degrees,
        );
        self.min_degree = self.degrees.iter().copied().min().unwrap_or(0);
        Ok(edge_index as u32)
    }

    /// Removes edge `eid` with `swap_remove` semantics: the last edge (if
    /// any remains past `eid`) takes over id `eid`, and its old id
    /// (`m - 1` before the call) is returned so callers holding edge ids
    /// — pinned tree packings, external indices — can remap exactly one
    /// id. Returns `None` when no edge moved. Rebuilds the CSR adjacency
    /// and degree cache in place — `O(n + m)`. Disconnecting the graph is
    /// allowed (solvers report 0-cuts); on `Err` the graph is unchanged.
    pub fn remove_edge(&mut self, eid: usize) -> Result<Option<u32>, GraphError> {
        if eid >= self.edges.len() {
            return Err(GraphError::EdgeIdOutOfRange { edge_id: eid });
        }
        let removed = self.edges.swap_remove(eid);
        self.total_weight -= removed.w;
        build_csr_degrees_into(
            self.n,
            &self.edges,
            &mut self.adj_offsets,
            &mut self.adj_edge_ids,
            &mut self.degrees,
        );
        self.min_degree = self.degrees.iter().copied().min().unwrap_or(0);
        Ok((eid < self.edges.len()).then_some(self.edges.len() as u32))
    }

    /// The smallest edge id connecting `u` and `v` (either orientation),
    /// if any — the id resolution rule the service's `remove_edge` /
    /// `reweight_edge` ops use on multigraphs.
    pub fn find_edge(&self, u: u32, v: u32) -> Option<u32> {
        if u as usize >= self.n || v as usize >= self.n || u == v {
            return None;
        }
        // Scan the sparser endpoint's incidence list; ids within one list
        // are ascending only per construction order, so take the min.
        let base = if self.incident_edge_ids(u).len() <= self.incident_edge_ids(v).len() {
            u
        } else {
            v
        };
        self.incident_edge_ids(base)
            .iter()
            .copied()
            .filter(|&eid| {
                let e = &self.edges[eid as usize];
                (e.u == u && e.v == v) || (e.u == v && e.v == u)
            })
            .min()
    }

    /// Value of the cut induced by `side` (`side[v] == true` defines one
    /// part). Computed in parallel over the edges.
    ///
    /// # Panics
    /// Panics if `side.len() != n`.
    pub fn cut_value(&self, side: &[bool]) -> u64 {
        assert_eq!(side.len(), self.n);
        self.edges
            .par_iter()
            .filter(|e| side[e.u as usize] != side[e.v as usize])
            .map(|e| e.w)
            .sum()
    }

    /// True if `side` is a proper nonempty cut (both parts nonempty).
    pub fn is_proper_cut(&self, side: &[bool]) -> bool {
        side.len() == self.n && side.iter().any(|&s| s) && side.iter().any(|&s| !s)
    }

    /// The subgraph induced by `vertices` (which must be distinct).
    /// Returns the subgraph (vertices renumbered `0..vertices.len()` in the
    /// given order); edge `i` of the result corresponds to an edge between
    /// the listed vertices with the same weight. Used by recursive
    /// partitioning workloads (cluster trees).
    ///
    /// # Panics
    /// Panics if `vertices` is empty, contains duplicates, or contains an
    /// out-of-range id.
    pub fn induced(&self, vertices: &[u32]) -> Graph {
        assert!(!vertices.is_empty(), "induced subgraph needs vertices");
        let mut local = vec![u32::MAX; self.n];
        for (i, &v) in vertices.iter().enumerate() {
            assert!((v as usize) < self.n, "vertex {v} out of range");
            assert_eq!(local[v as usize], u32::MAX, "duplicate vertex {v}");
            local[v as usize] = i as u32;
        }
        let edges: Vec<Edge> = self
            .edges
            .par_iter()
            .filter_map(|e| {
                let (a, b) = (local[e.u as usize], local[e.v as usize]);
                (a != u32::MAX && b != u32::MAX).then_some(Edge::new(a, b, e.w))
            })
            .collect();
        Graph::from_edge_structs(vertices.len(), edges)
            .expect("induced subgraph of a valid graph is valid")
    }
}

/// Builds the CSR arrays *and* the weighted-degree cache into reusable
/// buffers. The counting pass doubles as the degree accumulation — the one
/// construction helper shared by `from_edges`, `rebuild_from_edges`, and
/// every contraction, so no rebuild path re-sums degrees in a separate
/// loop. Uses the offsets array itself as the scatter cursor (no temporary
/// clone): after scattering, `offsets[v]` holds the *end* of `v`'s range,
/// so one right-shift restores the invariant `offsets[v]..offsets[v+1]`.
fn build_csr_degrees_into(
    n: usize,
    edges: &[Edge],
    offsets: &mut Vec<u32>,
    ids: &mut Vec<u32>,
    degrees: &mut Vec<u64>,
) {
    offsets.clear();
    offsets.resize(n + 1, 0);
    degrees.clear();
    degrees.resize(n, 0);
    for e in edges {
        offsets[e.u as usize + 1] += 1;
        offsets[e.v as usize + 1] += 1;
        degrees[e.u as usize] += e.w;
        degrees[e.v as usize] += e.w;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    ids.clear();
    ids.resize(2 * edges.len(), 0);
    for (i, e) in edges.iter().enumerate() {
        ids[offsets[e.u as usize] as usize] = i as u32;
        offsets[e.u as usize] += 1;
        ids[offsets[e.v as usize] as usize] = i as u32;
        offsets[e.v as usize] += 1;
    }
    for v in (1..=n).rev() {
        offsets[v] = offsets[v - 1];
    }
    offsets[0] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 2), (1, 2, 3), (2, 0, 4)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_weight(), 9);
    }

    #[test]
    fn heap_bytes_exact() {
        // Edge is {u: u32, v: u32, w: u64} = 16 bytes. For n vertices and
        // m edges: 16m (edges) + 4(n + 1) (offsets) + 4·2m (edge ids)
        // + 8n (degrees).
        assert_eq!(std::mem::size_of::<Edge>(), 16);
        let g = triangle(); // n = 3, m = 3
        assert_eq!(g.heap_bytes(), 16 * 3 + 4 * 4 + 4 * 6 + 8 * 3);
        let path = Graph::from_edges(3, &[(0, 1, 5), (1, 2, 7)]).unwrap(); // m = 2
        assert_eq!(path.heap_bytes(), 16 * 2 + 4 * 4 + 4 * 4 + 8 * 3); // 88
        let empty = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(empty.heap_bytes(), 4 * 2 + 8); // offsets [0, 0] + one degree
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2, 1)]),
            Err(GraphError::EndpointOutOfRange { edge_index: 0 })
        ));
    }

    #[test]
    fn rejects_self_loop_and_zero_weight() {
        assert!(matches!(
            Graph::from_edges(3, &[(1, 1, 5)]),
            Err(GraphError::SelfLoop { edge_index: 0 })
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(0, 1, 0)]),
            Err(GraphError::ZeroWeight { edge_index: 0 })
        ));
        assert!(matches!(Graph::from_edges(0, &[]), Err(GraphError::Empty)));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for v in 0..3u32 {
            for (u, w, eid) in g.neighbors(v) {
                let e = g.edges()[eid as usize];
                assert_eq!(e.w, w);
                assert!(g.neighbors(u).any(|(x, _, eid2)| x == v && eid2 == eid));
            }
        }
    }

    #[test]
    fn parallel_edges_allowed() {
        let g = Graph::from_edges(2, &[(0, 1, 1), (0, 1, 2), (1, 0, 3)]).unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.weighted_degree(0), 6);
        assert_eq!(g.incident_edge_ids(0).len(), 3);
    }

    #[test]
    fn weighted_degrees_match_scalar() {
        let g = triangle();
        assert_eq!(g.weighted_degrees(), vec![6, 5, 7]);
        assert_eq!(g.min_weighted_degree(), 5);
    }

    #[test]
    fn cut_value_triangle() {
        let g = triangle();
        // {0} vs {1,2}: crossing edges (0,1,2) and (2,0,4).
        assert_eq!(g.cut_value(&[true, false, false]), 6);
        assert_eq!(g.cut_value(&[false, true, true]), 6);
        assert_eq!(g.cut_value(&[true, true, true]), 0);
        assert!(g.is_proper_cut(&[true, false, false]));
        assert!(!g.is_proper_cut(&[true, true, true]));
    }

    #[test]
    fn induced_subgraph() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 3),
                (3, 4, 4),
                (4, 0, 5),
                (1, 3, 6),
            ],
        )
        .unwrap();
        let sub = g.induced(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3); // (1,2), (2,3), (1,3)
        assert_eq!(sub.total_weight(), 2 + 3 + 6);
        // Renumbering follows the input order: 1→0, 2→1, 3→2.
        assert!(sub.neighbors(0).any(|(x, w, _)| x == 2 && w == 6));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_rejects_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1, 1)]).unwrap();
        let _ = g.induced(&[0, 0]);
    }

    #[test]
    fn rebuild_reuses_buffers() {
        let mut g = triangle();
        let cap_edges = {
            // Grow once so subsequent smaller rebuilds provably fit.
            g.rebuild_from_edges(4, (0..3).map(|i| Edge::new(i, i + 1, (i + 1) as u64)))
                .unwrap();
            g.edges.capacity()
        };
        g.rebuild_from_edges(2, [Edge::new(0, 1, 7)]).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        assert_eq!(g.total_weight(), 7);
        assert_eq!(g.weighted_degrees(), &[7, 7]);
        assert_eq!(g.min_weighted_degree(), 7);
        assert_eq!(g.incident_edge_ids(0), &[0]);
        assert_eq!(g.edges.capacity(), cap_edges, "edge buffer must be reused");
        // Rebuild rejects bad input exactly like construction.
        assert!(matches!(
            g.rebuild_from_edges(2, [Edge::new(0, 0, 1)]),
            Err(GraphError::SelfLoop { edge_index: 0 })
        ));
    }

    #[test]
    fn reweight_edge_updates_all_caches() {
        let mut g = triangle();
        assert_eq!(g.reweight_edge(1, 10).unwrap(), 3); // (1,2): 3 -> 10
        assert_eq!(g.total_weight(), 16);
        assert_eq!(g.weighted_degrees(), &[6, 12, 14]);
        assert_eq!(g.min_weighted_degree(), 6);
        // CSR adjacency untouched: ids still resolve both endpoints.
        assert!(g
            .neighbors(1)
            .any(|(x, w, eid)| x == 2 && w == 10 && eid == 1));
        // Errors leave the graph unchanged.
        assert!(matches!(
            g.reweight_edge(3, 1),
            Err(GraphError::EdgeIdOutOfRange { edge_id: 3 })
        ));
        assert!(matches!(
            g.reweight_edge(0, 0),
            Err(GraphError::ZeroWeight { edge_index: 0 })
        ));
        assert!(matches!(
            g.reweight_edge(0, MAX_TOTAL_WEIGHT),
            Err(GraphError::TotalWeightOverflow)
        ));
        assert_eq!(g.total_weight(), 16);
        assert_eq!(g.edges()[0].w, 2);
    }

    #[test]
    fn add_edge_appends_and_rebuilds() {
        let mut g = triangle();
        let eid = g.add_edge(0, 2, 5).unwrap();
        assert_eq!(eid, 3); // appended: existing ids stable
        assert_eq!(g.m(), 4);
        assert_eq!(g.total_weight(), 14);
        assert_eq!(g.weighted_degrees(), &[11, 5, 12]);
        assert_eq!(g.min_weighted_degree(), 5);
        assert!(g.neighbors(0).any(|(x, w, id)| x == 2 && w == 5 && id == 3));
        assert!(matches!(
            g.add_edge(0, 3, 1),
            Err(GraphError::EndpointOutOfRange { edge_index: 4 })
        ));
        assert!(matches!(
            g.add_edge(1, 1, 1),
            Err(GraphError::SelfLoop { edge_index: 4 })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0),
            Err(GraphError::ZeroWeight { edge_index: 4 })
        ));
        assert_eq!(g.m(), 4, "failed adds must not change the graph");
    }

    #[test]
    fn remove_edge_swap_removes_and_reports_the_moved_id() {
        let mut g = triangle();
        // Removing id 0 moves the old last edge (id 2) into slot 0.
        assert_eq!(g.remove_edge(0).unwrap(), Some(2));
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges()[0], Edge::new(2, 0, 4));
        assert_eq!(g.total_weight(), 7);
        assert_eq!(g.weighted_degrees(), &[4, 3, 7]);
        assert_eq!(g.min_weighted_degree(), 3);
        // Removing the last edge moves nothing.
        assert_eq!(g.remove_edge(1).unwrap(), None);
        assert_eq!(g.m(), 1);
        assert!(matches!(
            g.remove_edge(5),
            Err(GraphError::EdgeIdOutOfRange { edge_id: 5 })
        ));
        // Disconnecting removals are allowed.
        assert_eq!(g.remove_edge(0).unwrap(), None);
        assert_eq!(g.m(), 0);
        assert_eq!(g.total_weight(), 0);
        assert_eq!(g.min_weighted_degree(), 0);
    }

    #[test]
    fn mutations_match_from_scratch_construction() {
        let mut g = triangle();
        g.reweight_edge(0, 9).unwrap();
        g.add_edge(0, 2, 5).unwrap();
        g.remove_edge(1).unwrap(); // (1,2,3) out; (0,2,5) moves to id 1
        let fresh = Graph::from_edges(3, &[(0, 1, 9), (0, 2, 5), (2, 0, 4)]).unwrap();
        assert_eq!(g.edges(), fresh.edges());
        assert_eq!(g.total_weight(), fresh.total_weight());
        assert_eq!(g.weighted_degrees(), fresh.weighted_degrees());
        assert_eq!(g.min_weighted_degree(), fresh.min_weighted_degree());
        for v in 0..3 {
            assert_eq!(g.incident_edge_ids(v), fresh.incident_edge_ids(v));
        }
    }

    #[test]
    fn find_edge_picks_the_smallest_parallel_id() {
        let g = Graph::from_edges(3, &[(0, 1, 1), (1, 0, 2), (1, 2, 3)]).unwrap();
        assert_eq!(g.find_edge(0, 1), Some(0));
        assert_eq!(g.find_edge(1, 0), Some(0));
        assert_eq!(g.find_edge(2, 1), Some(2));
        assert_eq!(g.find_edge(0, 2), None);
        assert_eq!(g.find_edge(0, 0), None);
        assert_eq!(g.find_edge(0, 7), None);
    }

    #[test]
    fn isolated_vertices_ok() {
        let g = Graph::from_edges(5, &[(0, 1, 1)]).unwrap();
        assert_eq!(g.weighted_degree(4), 0);
        assert!(g.incident_edge_ids(4).is_empty());
    }
}
