//! Batched lowest common ancestors.
//!
//! Appendix A charges each graph edge `(u, v)` to the tree vertex
//! `lca(u, v)` in order to compute `ρ↓(x)` — the total weight of edges with
//! both endpoints in `x↓` — by subtree sums; Lemma 11's 1-respecting cut
//! values need the same quantity. The paper cites Schieber–Vishkin \[28\]; we
//! substitute the standard Euler-tour + sparse-table RMQ index (same
//! `O(1)` query after `O(n log n)` preprocessing; batch queries are
//! embarrassingly parallel), as recorded in DESIGN.md.

use rayon::prelude::*;

use crate::tree::RootedTree;

/// Constant-time LCA index over a rooted tree.
#[derive(Clone, Debug)]
pub struct LcaIndex {
    /// First occurrence of each vertex in the Euler walk.
    first: Vec<u32>,
    /// Flat sparse table over the Euler walk, storing the index of the
    /// minimum-depth vertex in windows of length `2^j`. Row `j` has exact
    /// length `len − 2^j + 1` and occupies
    /// `table[level_off[j] .. level_off[j + 1]]` — one contiguous buffer
    /// instead of a `Vec` per level.
    table: Vec<u32>,
    /// Row offsets into `table`, one per level plus the end sentinel.
    level_off: Vec<u32>,
    /// `walk[i]`: vertex at Euler walk position `i` (length `2n - 1`).
    walk: Vec<u32>,
    /// Depth of `walk[i]`.
    walk_depth: Vec<u32>,
}

impl LcaIndex {
    /// Builds the index (`O(n log n)` work).
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.n();
        // Euler walk visiting each edge twice: v, child subtree, v, ...
        let mut walk = Vec::with_capacity(2 * n - 1);
        let mut first = vec![u32::MAX; n];
        enum Frame {
            Visit(u32),
            Emit(u32),
        }
        let mut stack = vec![Frame::Visit(tree.root())];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Visit(v) => {
                    if first[v as usize] == u32::MAX {
                        first[v as usize] = walk.len() as u32;
                    }
                    walk.push(v);
                    let children = tree.children(v);
                    // After each child's subtree, re-emit v.
                    for &c in children.iter().rev() {
                        stack.push(Frame::Emit(v));
                        stack.push(Frame::Visit(c));
                    }
                }
                Frame::Emit(v) => {
                    walk.push(v);
                }
            }
        }
        debug_assert_eq!(walk.len(), 2 * n - 1);
        let walk_depth: Vec<u32> = walk.iter().map(|&v| tree.depth(v)).collect();
        let len = walk.len();
        let levels = (usize::BITS - len.leading_zeros()) as usize;
        // Rows shrink by 2^(j-1) each level, so the flat table holds fewer
        // than 2·len entries total.
        let mut table: Vec<u32> = Vec::with_capacity(2 * len);
        let mut level_off: Vec<u32> = Vec::with_capacity(levels + 1);
        level_off.push(0);
        table.extend(0..len as u32);
        level_off.push(table.len() as u32);
        let mut j = 1;
        while (1 << j) <= len {
            let half = 1 << (j - 1);
            let prev_base = level_off[j - 1] as usize;
            let prev = &table[prev_base..level_off[j] as usize];
            let row: Vec<u32> = (0..=(len - (1 << j)))
                .into_par_iter()
                .map(|i| {
                    let a = prev[i];
                    let b = prev[i + half];
                    if walk_depth[a as usize] <= walk_depth[b as usize] {
                        a
                    } else {
                        b
                    }
                })
                .collect();
            table.extend_from_slice(&row);
            level_off.push(table.len() as u32);
            j += 1;
        }
        LcaIndex {
            first,
            table,
            level_off,
            walk,
            walk_depth,
        }
    }

    /// The lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: u32, v: u32) -> u32 {
        let (mut lo, mut hi) = (
            self.first[u as usize] as usize,
            self.first[v as usize] as usize,
        );
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let len = hi - lo + 1;
        let j = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let base = self.level_off[j] as usize;
        let a = self.table[base + lo];
        let b = self.table[base + hi + 1 - (1 << j)];
        let idx = if self.walk_depth[a as usize] <= self.walk_depth[b as usize] {
            a
        } else {
            b
        };
        self.walk[idx as usize]
    }

    /// LCAs of many pairs, computed in parallel.
    pub fn lca_batch(&self, pairs: &[(u32, u32)]) -> Vec<u32> {
        pairs.par_iter().map(|&(u, v)| self.lca(u, v)).collect()
    }

    /// Bytes of heap memory in active use by the index (`len`-based; all
    /// five arrays are u32).
    pub fn heap_bytes(&self) -> usize {
        (self.first.len()
            + self.table.len()
            + self.level_off.len()
            + self.walk.len()
            + self.walk_depth.len())
            * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NO_PARENT;

    fn sample() -> RootedTree {
        RootedTree::from_parents(0, vec![NO_PARENT, 0, 0, 1, 1, 2, 3])
    }

    #[test]
    fn small_tree_lcas() {
        let t = sample();
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(3, 4), 1);
        assert_eq!(idx.lca(6, 4), 1);
        assert_eq!(idx.lca(6, 5), 0);
        assert_eq!(idx.lca(3, 6), 3); // ancestor case
        assert_eq!(idx.lca(2, 5), 2);
        assert_eq!(idx.lca(0, 6), 0);
        assert_eq!(idx.lca(4, 4), 4); // self
    }

    fn naive_lca(t: &RootedTree, mut u: u32, mut v: u32) -> u32 {
        while t.depth(u) > t.depth(v) {
            u = t.parent(u);
        }
        while t.depth(v) > t.depth(u) {
            v = t.parent(v);
        }
        while u != v {
            u = t.parent(u);
            v = t.parent(v);
        }
        u
    }

    #[test]
    fn random_tree_matches_naive() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let n = 500;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut parent = vec![NO_PARENT; n];
        for v in 1..n {
            parent[v] = rng.gen_range(0..v) as u32;
        }
        let t = RootedTree::from_parents(0, parent);
        let idx = LcaIndex::new(&t);
        let pairs: Vec<(u32, u32)> = (0..2000)
            .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
            .collect();
        let got = idx.lca_batch(&pairs);
        for (&(u, v), &l) in pairs.iter().zip(&got) {
            assert_eq!(l, naive_lca(&t, u, v), "lca({u},{v})");
        }
    }

    #[test]
    fn path_tree_lca_is_shallower() {
        let n = 200;
        let mut parent = vec![NO_PARENT; n];
        for v in 1..n {
            parent[v] = (v - 1) as u32;
        }
        let t = RootedTree::from_parents(0, parent);
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(150, 80), 80);
        assert_eq!(idx.lca(0, 199), 0);
    }

    #[test]
    fn single_vertex() {
        let t = RootedTree::from_parents(0, vec![NO_PARENT]);
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(0, 0), 0);
    }

    #[test]
    fn heap_bytes_exact() {
        // Two-vertex path: Euler walk length 3, sparse-table rows of
        // lengths 3 and 2, level_off [0, 3, 5]. All five arrays u32:
        // (first 2 + table 5 + level_off 3 + walk 3 + walk_depth 3) · 4.
        let t = RootedTree::from_parents(0, vec![NO_PARENT, 0]);
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.heap_bytes(), (2 + 5 + 3 + 3 + 3) * 4);
    }
}
