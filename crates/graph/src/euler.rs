//! Euler tours of rooted trees.
//!
//! An Euler tour linearizes a tree so that every subtree `v↓` becomes a
//! contiguous interval `[enter[v], exit[v])` of the tour. Two consequences
//! power the algorithm:
//!
//! * subtree aggregation (Lemma 11's cut values, Appendix A's `ρ↓`) becomes
//!   a prefix sum over the tour (`O(n)` work, `O(log n)` depth), and
//! * ancestor tests are two comparisons (`enter[a] <= enter[v] < exit[a]`).
//!
//! The tour is built by an iterative DFS. The PRAM-faithful alternative
//! (successor arrays + list ranking) exists in `pmc-par::list_rank`; the DFS
//! is `O(n)` and is not on the measured critical path of any experiment.

use crate::tree::RootedTree;
use pmc_par::scan::inclusive_scan_in_place;

/// Euler tour with entry/exit times and the depth-ordered vertex sequence.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// `enter[v]`: index of `v`'s first visit; vertices of `v↓` occupy
    /// `enter[v]..exit[v]` in [`EulerTour::order`].
    pub enter: Vec<u32>,
    /// One past the last position of `v↓` in the order.
    pub exit: Vec<u32>,
    /// `order[i]` = vertex with `enter == i` (a DFS preorder).
    pub order: Vec<u32>,
}

impl EulerTour {
    /// Builds the tour for `tree`.
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.n();
        let mut enter = vec![0u32; n];
        let mut exit = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        // Iterative DFS; children visited in CSR order.
        enum Frame {
            Enter(u32),
            Exit(u32),
        }
        let mut stack = vec![Frame::Enter(tree.root())];
        let mut time = 0u32;
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    enter[v as usize] = time;
                    order.push(v);
                    time += 1;
                    stack.push(Frame::Exit(v));
                    // Push children in reverse so the first child is visited
                    // first (cosmetic; any order is correct).
                    for &c in tree.children(v).iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(v) => {
                    exit[v as usize] = time;
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        EulerTour { enter, exit, order }
    }

    /// True if `a` is an ancestor of `v` (every vertex is its own ancestor,
    /// as in the paper's preliminaries).
    pub fn is_ancestor(&self, a: u32, v: u32) -> bool {
        self.enter[a as usize] <= self.enter[v as usize]
            && self.enter[v as usize] < self.exit[a as usize]
    }

    /// Subtree sums via tour prefix sums: `out[v] = Σ_{x ∈ v↓} value[x]`.
    ///
    /// `O(n)` work, `O(log n)` depth (one parallel scan + gathers).
    pub fn subtree_sums(&self, value: &[i64]) -> Vec<i64> {
        let n = self.order.len();
        assert_eq!(value.len(), n);
        // prefix[i] = sum of value[order[0..i]] — so the subtree sum of v is
        // prefix[exit[v]] - prefix[enter[v]].
        let mut by_order: Vec<i64> = self.order.iter().map(|&v| value[v as usize]).collect();
        inclusive_scan_in_place(&mut by_order);
        let prefix_at = |i: u32| -> i64 {
            if i == 0 {
                0
            } else {
                by_order[i as usize - 1]
            }
        };
        (0..n)
            .map(|v| prefix_at(self.exit[v]) - prefix_at(self.enter[v]))
            .collect()
    }
}

/// Convenience: tour + subtree sums in one call.
pub fn subtree_sums(tree: &RootedTree, value: &[i64]) -> Vec<i64> {
    EulerTour::new(tree).subtree_sums(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NO_PARENT;

    fn sample() -> RootedTree {
        // Same shape as tree::tests::sample.
        RootedTree::from_parents(0, vec![NO_PARENT, 0, 0, 1, 1, 2, 3])
    }

    #[test]
    fn intervals_nest() {
        let t = sample();
        let e = EulerTour::new(&t);
        for (p, c) in t.edges() {
            assert!(e.enter[p as usize] < e.enter[c as usize]);
            assert!(e.exit[c as usize] <= e.exit[p as usize]);
        }
        assert_eq!(e.enter[0], 0);
        assert_eq!(e.exit[0], 7);
    }

    #[test]
    fn ancestor_tests() {
        let t = sample();
        let e = EulerTour::new(&t);
        assert!(e.is_ancestor(0, 6));
        assert!(e.is_ancestor(1, 6));
        assert!(e.is_ancestor(3, 6));
        assert!(e.is_ancestor(6, 6)); // self
        assert!(!e.is_ancestor(6, 3));
        assert!(!e.is_ancestor(2, 6));
        assert!(!e.is_ancestor(4, 6));
    }

    #[test]
    fn subtree_sums_match_reference() {
        let t = sample();
        let vals = vec![1i64, 2, 3, 4, 5, 6, 7];
        assert_eq!(subtree_sums(&t, &vals), t.subtree_sums(&vals));
    }

    #[test]
    fn subtree_sums_large_random_tree() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let n = 5000;
        let mut rng = SmallRng::seed_from_u64(99);
        let mut parent = vec![NO_PARENT; n];
        for v in 1..n {
            parent[v] = rng.gen_range(0..v) as u32;
        }
        let t = RootedTree::from_parents(0, parent);
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
        assert_eq!(subtree_sums(&t, &vals), t.subtree_sums(&vals));
    }

    #[test]
    fn order_matches_enter() {
        let t = sample();
        let e = EulerTour::new(&t);
        for (i, &v) in e.order.iter().enumerate() {
            assert_eq!(e.enter[v as usize] as usize, i);
        }
    }
}
