//! The workspace-wide error type.
//!
//! Every fallible public entry point in the workspace — the paper solver,
//! the baselines, the CLI loaders — reports failures as [`PmcError`], so
//! callers handle one enum regardless of which algorithm or layer raised
//! the problem. Lower-level structural errors ([`GraphError`], [`IoError`])
//! stay precise and are wrapped via `From`.

use crate::graph::GraphError;
use crate::io::IoError;

/// Unified error for all minimum-cut solvers and their supporting layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmcError {
    /// Minimum cuts require at least two vertices.
    TooSmall,
    /// The requested algorithm name is not in the registry. Carries the
    /// offending name followed by the valid registry names and aliases
    /// (filled in by `pmc_core::solver::solver_by_name`).
    UnknownAlgorithm(String),
    /// The algorithm exists but cannot run on this input (e.g. brute force
    /// beyond its enumeration bound).
    Unsupported {
        /// Registry name of the algorithm.
        algorithm: &'static str,
        /// Human-readable explanation of the limit that was hit.
        reason: String,
    },
    /// A configuration field has a value the solver cannot honor.
    InvalidConfig(String),
    /// A randomized algorithm exhausted its repetition budget without
    /// producing any cut (never observed for connected inputs; kept so the
    /// dispatch layer is total).
    NoCutFound {
        /// Registry name of the algorithm.
        algorithm: &'static str,
    },
    /// A solver returned a witness partition that fails post-hoc
    /// verification (improper cut, or value mismatch with the reported
    /// cut). Always indicates a solver bug, never bad input.
    Verification {
        /// Registry name of the algorithm.
        algorithm: &'static str,
        /// What the verification pass observed.
        detail: String,
    },
    /// Structural problem with the input graph.
    Graph(GraphError),
    /// Problem reading or parsing a graph file.
    Io(String),
    /// The solve was cancelled cooperatively (deadline exceeded or the
    /// caller revoked the request) before a result was produced. The
    /// workspace is left reusable; no partial result is returned.
    Cancelled,
}

impl std::fmt::Display for PmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmcError::TooSmall => write!(f, "graph needs at least 2 vertices"),
            PmcError::UnknownAlgorithm(name) => {
                write!(f, "unknown algorithm: {name}")
            }
            PmcError::Unsupported { algorithm, reason } => {
                write!(
                    f,
                    "algorithm {algorithm:?} cannot run on this input: {reason}"
                )
            }
            PmcError::InvalidConfig(msg) => write!(f, "invalid solver config: {msg}"),
            PmcError::NoCutFound { algorithm } => {
                write!(f, "algorithm {algorithm:?} produced no cut")
            }
            PmcError::Verification { algorithm, detail } => {
                write!(f, "algorithm {algorithm:?} failed verification: {detail}")
            }
            PmcError::Graph(e) => write!(f, "invalid graph: {e}"),
            PmcError::Io(msg) => write!(f, "{msg}"),
            PmcError::Cancelled => {
                write!(f, "solve cancelled before completion (deadline exceeded)")
            }
        }
    }
}

impl std::error::Error for PmcError {}

impl From<GraphError> for PmcError {
    fn from(e: GraphError) -> Self {
        PmcError::Graph(e)
    }
}

impl From<IoError> for PmcError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Graph(g) => PmcError::Graph(g),
            other => PmcError::Io(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PmcError::TooSmall.to_string().contains("2 vertices"));
        assert!(PmcError::UnknownAlgorithm("xyz".into())
            .to_string()
            .contains("xyz"));
        let e = PmcError::Unsupported {
            algorithm: "brute",
            reason: "n = 100 exceeds the n <= 24 enumeration bound".into(),
        };
        assert!(e.to_string().contains("brute"));
        assert!(e.to_string().contains("n <= 24"));
    }

    #[test]
    fn io_graph_errors_collapse_to_graph() {
        let io = IoError::Graph(GraphError::Empty);
        assert_eq!(PmcError::from(io), PmcError::Graph(GraphError::Empty));
    }
}
