//! Nagamochi–Ibaraki sparse connectivity certificates.
//!
//! The paper's related work (§1.2.2, [22, 32]) builds on scan-first search:
//! a single maximum-adjacency sweep partitions the edges into forests
//! `F₁, F₂, …` such that the union of the first `k` forests — the
//! *k-certificate* — preserves every cut of value `≤ k` exactly, while
//! larger cuts keep value `≥ k`. With `k` set to any upper bound on the
//! minimum cut (we use the minimum weighted degree), the certificate has
//! total weight at most `k·(n−1)` yet has exactly the same minimum cuts as
//! the input. For dense graphs this is a drop-in sparsifier in front of the
//! whole pipeline: the min-cut work bound becomes
//! `O(min(m, c·n) · log⁴ n)`.
//!
//! Weighted formulation: scanning vertex `v` in maximum-adjacency order,
//! an edge `(v, u)` with weight `w` enters the certificate with weight
//! `min(w, max(0, k − r(u)))` where `r(u)` is `u`'s adjacency count so far
//! (the weighted analogue of "assign to forests `r(u)+1 … r(u)+w`"), after
//! which `r(u) += w`.

use crate::graph::{Edge, Graph};

/// Result of certificate construction.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The sparsified graph (same vertex set).
    pub graph: Graph,
    /// The `k` used.
    pub k: u64,
    /// Total weight kept / original total weight.
    pub kept_fraction: f64,
}

/// Reusable buffers for [`ni_certificate_with`]: the maximum-adjacency
/// sweep's visited flags, adjacency counters, kept-edge staging area, and
/// the lazy heap. One scratch amortizes any number of certificate builds.
#[derive(Clone, Debug, Default)]
pub struct CertScratch {
    visited: Vec<bool>,
    r: Vec<u64>,
    kept: Vec<Edge>,
    heap: std::collections::BinaryHeap<(u64, u32)>,
}

impl CertScratch {
    /// Bytes of heap memory in active use by the scratch buffers
    /// (`len`-based, matching [`crate::Graph::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.visited.len()
            + self.r.len() * std::mem::size_of::<u64>()
            + self.kept.len() * std::mem::size_of::<Edge>()
            + self.heap.len() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Builds the Nagamochi–Ibaraki `k`-certificate of `g`.
///
/// Guarantees (classic NI theorem): for every cut `C`,
/// `val_cert(C) = val(C)` if `val(C) ≤ k`, and `val_cert(C) ≥ k`
/// otherwise. In particular, if `k ≥ mincut(g)`, the certificate has the
/// same minimum cut value and the same minimizing partitions.
///
/// `O(m log n)` time (binary-heap maximum-adjacency order).
pub fn ni_certificate(g: &Graph, k: u64) -> Certificate {
    let mut out = Graph::from_edges(1, &[]).expect("placeholder graph");
    let kept_fraction = ni_certificate_with(g, k, &mut CertScratch::default(), &mut out);
    Certificate {
        graph: out,
        k,
        kept_fraction,
    }
}

/// [`ni_certificate`] into a reusable output graph and scratch arena.
/// Returns the kept weight fraction; the certificate itself is rebuilt in
/// place inside `out` (every internal buffer recycled).
pub fn ni_certificate_with(g: &Graph, k: u64, ws: &mut CertScratch, out: &mut Graph) -> f64 {
    let n = g.n();
    ws.visited.clear();
    ws.visited.resize(n, false);
    // r[u]: total weight between u and already-scanned vertices.
    ws.r.clear();
    ws.r.resize(n, 0);
    ws.kept.clear();
    ws.heap.clear();
    let mut scanned = 0usize;
    let mut next_seed = 0u32;
    while scanned < n {
        let v = loop {
            match ws.heap.pop() {
                Some((key, v)) => {
                    if !ws.visited[v as usize] && key == ws.r[v as usize] {
                        break v;
                    }
                }
                None => {
                    // Start a new component at the next unvisited vertex.
                    while ws.visited[next_seed as usize] {
                        next_seed += 1;
                    }
                    break next_seed;
                }
            }
        };
        ws.visited[v as usize] = true;
        scanned += 1;
        for (u, w, _eid) in g.neighbors(v) {
            if ws.visited[u as usize] {
                continue;
            }
            let ru = ws.r[u as usize];
            if ru < k {
                let keep = w.min(k - ru);
                ws.kept.push(Edge::new(v, u, keep));
            }
            ws.r[u as usize] = ru + w;
            ws.heap.push((ws.r[u as usize], u));
        }
    }
    out.rebuild_from_edges(n, ws.kept.iter().copied())
        .expect("certificate of a valid graph is valid");
    out.total_weight() as f64 / g.total_weight().max(1) as f64
}

/// The certificate at `k =` minimum weighted degree `+ 1` — a safe
/// sparsifier for minimum-cut computations. The `+ 1` matters for witness
/// extraction: with `k = mincut` exactly, a larger cut may shrink *to*
/// `k` in the certificate and masquerade as a minimum cut; with
/// `k > mincut`, any certificate cut of value `mincut < k` must have had
/// original value `mincut` too, so values *and* minimizing partitions are
/// preserved. Returns `None` when the certificate would not shrink the
/// graph meaningfully (kept weight ≥ ¾ of the original), in which case
/// callers should use the input as-is.
pub fn mincut_certificate(g: &Graph) -> Option<Certificate> {
    let dmin = g.min_weighted_degree();
    if dmin == 0 {
        return None; // isolated vertex: min cut is 0 anyway
    }
    let k = dmin + 1;
    // Cheap pre-check: the certificate keeps at most k(n-1) weight.
    if (k as u128) * (g.n() as u128 - 1) * 4 >= 3 * g.total_weight() as u128 {
        return None;
    }
    let cert = ni_certificate(g, k);
    (cert.kept_fraction < 0.75).then_some(cert)
}

/// [`mincut_certificate`] into a reusable scratch + output graph. Returns
/// `Some((k, kept_fraction))` when the certificate is worth using (in which
/// case `out` holds it). On `None`, `out` must not be read: the cheap
/// pre-check leaves it untouched, but a certificate rejected for keeping
/// `≥ ¾` of the weight has already been built into it.
pub fn mincut_certificate_with(
    g: &Graph,
    ws: &mut CertScratch,
    out: &mut Graph,
) -> Option<(u64, f64)> {
    let dmin = g.min_weighted_degree();
    if dmin == 0 {
        return None; // isolated vertex: min cut is 0 anyway
    }
    let k = dmin + 1;
    // Cheap pre-check: the certificate keeps at most k(n-1) weight.
    if (k as u128) * (g.n() as u128 - 1) * 4 >= 3 * g.total_weight() as u128 {
        return None;
    }
    let kept_fraction = ni_certificate_with(g, k, ws, out);
    (kept_fraction < 0.75).then_some((k, kept_fraction))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Exact min cut by brute force (small n only).
    fn brute(g: &Graph) -> u64 {
        let n = g.n();
        assert!(n <= 16);
        (1u32..(1 << (n - 1)))
            .map(|mask| {
                let side: Vec<bool> = (0..n)
                    .map(|v| v > 0 && (mask >> (v - 1)) & 1 == 1)
                    .collect();
                g.cut_value(&side)
            })
            .min()
            .unwrap()
    }

    #[test]
    fn certificate_weight_bound() {
        let g = gen::complete(40, 5, 1);
        let k = 10;
        let cert = ni_certificate(&g, k);
        assert!(cert.graph.total_weight() <= k * (g.n() as u64 - 1));
    }

    #[test]
    fn small_cuts_preserved_exactly() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..40 {
            let n = rng.gen_range(4..12);
            let g = gen::complete(n, 6, trial);
            let k = g.min_weighted_degree();
            let cert = ni_certificate(&g, k);
            // Every cut of value <= k must be preserved exactly; larger
            // cuts must stay >= k. Check all cuts by enumeration.
            for mask in 1u32..(1 << (n - 1)) {
                let side: Vec<bool> = (0..n)
                    .map(|v| v > 0 && (mask >> (v - 1)) & 1 == 1)
                    .collect();
                let orig = g.cut_value(&side);
                let kept = cert.graph.cut_value(&side);
                if orig <= k {
                    assert_eq!(kept, orig, "small cut changed (trial {trial})");
                } else {
                    assert!(kept >= k, "large cut fell below k (trial {trial})");
                }
                assert!(kept <= orig, "certificate increased a cut");
            }
        }
    }

    #[test]
    fn min_cut_value_is_invariant() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        for trial in 0..30 {
            let n = rng.gen_range(4..14);
            let m = rng.gen_range(n..3 * n);
            let g = gen::gnm_connected(n, m, 8, 100 + trial);
            let cert = ni_certificate(&g, g.min_weighted_degree());
            assert_eq!(brute(&g), brute(&cert.graph), "trial {trial}");
        }
    }

    #[test]
    fn dense_graph_with_weak_vertex_shrinks() {
        // K_100 (unit weights) plus a pendant vertex on a weight-3 edge:
        // min degree (and min cut) is 3, so the certificate keeps at most
        // 3(n-1) of the ~5000 weight.
        let k100 = gen::complete(100, 1, 7);
        let mut edges: Vec<(u32, u32, u64)> =
            k100.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        edges.push((0, 100, 3));
        let g = Graph::from_edges(101, &edges).unwrap();
        let cert = mincut_certificate(&g).expect("dense graph with weak vertex must shrink");
        assert_eq!(cert.k, 4);
        assert!(cert.graph.total_weight() <= 4 * 100);
        // The pendant cut survives with its exact value.
        let mut side = vec![false; 101];
        side[100] = true;
        assert_eq!(cert.graph.cut_value(&side), 3);
    }

    #[test]
    fn uniform_complete_graph_not_worth_it() {
        // K_n with unit weights: min cut = min degree = n-1, the
        // certificate cannot shrink it, and the heuristic must say so.
        let g = gen::complete(100, 1, 7);
        assert!(mincut_certificate(&g).is_none());
    }

    #[test]
    fn sparse_graph_not_worth_it() {
        let g = gen::cycle_with_chords(100, 5, 2);
        assert!(mincut_certificate(&g).is_none());
    }

    #[test]
    fn scratch_variant_matches_allocating_path() {
        let mut ws = CertScratch::default();
        let mut out = Graph::from_edges(1, &[]).unwrap();
        for trial in 0..5 {
            let g = gen::complete(30 + trial as usize, 4, trial);
            let k = g.min_weighted_degree();
            let want = ni_certificate(&g, k);
            let frac = ni_certificate_with(&g, k, &mut ws, &mut out);
            assert_eq!(out.total_weight(), want.graph.total_weight());
            assert_eq!(out.m(), want.graph.m());
            assert!((frac - want.kept_fraction).abs() < 1e-12);
        }
        // The Option-returning wrapper agrees with the allocating one.
        let g = gen::complete(50, 3, 9);
        match (
            mincut_certificate(&g),
            mincut_certificate_with(&g, &mut ws, &mut out),
        ) {
            (None, None) => {}
            (Some(c), Some((k, frac))) => {
                assert_eq!(c.k, k);
                assert!((c.kept_fraction - frac).abs() < 1e-12);
                assert_eq!(c.graph.total_weight(), out.total_weight());
            }
            (a, b) => panic!("disagreement: {:?} vs {:?}", a.is_some(), b.is_some()),
        }
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = Graph::from_edges(5, &[(0, 1, 3), (2, 3, 4)]).unwrap();
        let cert = ni_certificate(&g, 2);
        // Cut between components stays 0.
        let side = vec![true, true, false, false, false];
        assert_eq!(cert.graph.cut_value(&side), 0);
    }

    use crate::graph::Graph;
}
