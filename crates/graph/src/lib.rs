//! Graph substrate for the parallel minimum-cut reproduction.
//!
//! Provides the undirected weighted multigraph type ([`Graph`]), rooted
//! spanning trees ([`RootedTree`]), Euler tours and constant-time LCA
//! queries ([`lca`]), connected components, graph contraction (the
//! bough-phase cascade of §4.1.3 contracts graphs and trees in lock-step),
//! cut evaluation, and a family of workload generators used by the tests and
//! the benchmark harness.

pub mod certificate;
pub mod components;
pub mod contract;
pub mod error;
pub mod euler;
pub mod gen;
pub mod graph;
pub mod io;
pub mod lca;
pub mod tree;

pub use certificate::{
    mincut_certificate, mincut_certificate_with, ni_certificate, ni_certificate_with, CertScratch,
    Certificate,
};
pub use components::{connected_components, is_connected, UnionFind};
pub use contract::{contract, contract_into};
pub use error::PmcError;
pub use euler::EulerTour;
pub use graph::{Edge, Graph, GraphError, Weight};
pub use io::{read_dimacs, read_edge_list, read_path, write_dimacs, IoError};
pub use lca::LcaIndex;
pub use tree::{RootedTree, TreeScratch};
