//! Connectivity.
//!
//! A disconnected graph has minimum cut 0 (paper §1.1.1), so the top-level
//! algorithm starts with a connectivity check. We provide a classic
//! union-find plus a parallel hooking/compression component labelling in the
//! spirit of Shiloach–Vishkin, used when the edge set is large.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::graph::Graph;

/// Union-find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }
}

/// Component label per vertex (labels are arbitrary but consistent) plus the
/// component count. Sequential union-find; `O(m α(n))`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    let labels: Vec<u32> = (0..g.n() as u32).map(|v| uf.find(v)).collect();
    let count = uf.components();
    (labels, count)
}

/// True if the graph is connected. Uses the parallel labelling for large
/// graphs and the union-find otherwise.
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    if g.m() >= 1 << 16 {
        parallel_components(g) == 1
    } else {
        connected_components(g).1 == 1
    }
}

/// Parallel hooking + pointer jumping component count.
/// `O(m log n)` work, `O(log² n)` depth.
pub fn parallel_components(g: &Graph) -> usize {
    let n = g.n();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    loop {
        // Hook: every edge tries to attach the larger label's root to the
        // smaller label. Races are benign: any successful hook makes
        // progress, and the loop re-checks convergence globally.
        let changed: bool = g
            .edges()
            .par_iter()
            .map(|e| {
                let lu = label[e.u as usize].load(Ordering::Relaxed);
                let lv = label[e.v as usize].load(Ordering::Relaxed);
                if lu == lv {
                    return false;
                }
                let (hi, lo) = if lu > lv { (lu, lv) } else { (lv, lu) };
                // Only hook roots to keep the forest shallow-ish.
                if label[hi as usize].load(Ordering::Relaxed) == hi {
                    label[hi as usize].store(lo, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            })
            .reduce(|| false, |a, b| a || b);
        // Compress: pointer jumping until stable.
        loop {
            let jumped: bool = (0..n)
                .into_par_iter()
                .map(|v| {
                    let l = label[v].load(Ordering::Relaxed);
                    let ll = label[l as usize].load(Ordering::Relaxed);
                    if ll != l {
                        label[v].store(ll, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                })
                .reduce(|| false, |a, b| a || b);
            if !jumped {
                break;
            }
        }
        if !changed {
            break;
        }
    }
    let mut roots: Vec<u32> = (0..n)
        .into_par_iter()
        .map(|v| label[v].load(Ordering::Relaxed))
        .collect();
    roots.par_sort_unstable();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vertex_connected() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).1, 1);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!is_connected(&g));
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(parallel_components(&g), 2);
    }

    #[test]
    fn path_is_connected() {
        let n = 1000;
        let edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1, 1)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        assert!(is_connected(&g));
        assert_eq!(parallel_components(&g), 1);
    }

    #[test]
    fn isolated_vertices_count() {
        let g = Graph::from_edges(5, &[(0, 1, 1)]).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 4); // {0,1}, {2}, {3}, {4}
        assert_eq!(parallel_components(&g), 4);
    }

    #[test]
    fn union_find_behaviour() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        assert!(uf.union(0, 2));
        assert_eq!(uf.find(3), uf.find(1));
    }

    #[test]
    fn parallel_matches_sequential_random() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(2..200);
            let m = rng.gen_range(0..400);
            let edges: Vec<(u32, u32, u64)> = (0..m)
                .filter_map(|_| {
                    let u = rng.gen_range(0..n) as u32;
                    let v = rng.gen_range(0..n) as u32;
                    (u != v).then_some((u, v, 1))
                })
                .collect();
            let g = Graph::from_edges(n, &edges).unwrap();
            assert_eq!(parallel_components(&g), connected_components(&g).1);
        }
    }
}
