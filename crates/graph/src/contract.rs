//! Graph contraction.
//!
//! The bough-phase cascade (§4.1.3) contracts, in each phase, all edges with
//! at least one endpoint in a bough — in the spanning tree *and* in the
//! graph at the same time. Contraction here is the general quotient
//! operation: given a mapping of old vertices to new vertices, re-target
//! every edge, drop the resulting self-loops, and keep parallel edges
//! (the paper notes combining them is unnecessary, and keeping them
//! preserves the `O(m)` bound on per-phase operation counts).

use rayon::prelude::*;

use crate::graph::{Edge, Graph};

/// Contracts `g` according to `mapping` (`mapping[v]` = new id of `v`,
/// new ids must be `0..new_n`). Self-loops are dropped; parallel edges kept.
///
/// Cut preservation: for any cut `C'` of the contracted graph, the preimage
/// `{v : mapping[v] ∈ C'}` is a cut of `g` of the same value — this is what
/// makes per-phase candidate values globally valid.
///
/// # Panics
/// Panics if `mapping.len() != g.n()` or a mapped id is `>= new_n`.
pub fn contract(g: &Graph, mapping: &[u32], new_n: usize) -> Graph {
    assert_eq!(mapping.len(), g.n());
    debug_assert!(mapping.iter().all(|&x| (x as usize) < new_n));
    let edges: Vec<Edge> = g
        .edges()
        .par_iter()
        .filter_map(|e| {
            let nu = mapping[e.u as usize];
            let nv = mapping[e.v as usize];
            (nu != nv).then_some(Edge::new(nu, nv, e.w))
        })
        .collect();
    Graph::from_edge_structs(new_n, edges).expect("contraction of a valid graph is valid")
}

/// [`contract`] into a reusable output graph: `out`'s internal buffers
/// (edge list, CSR arrays, degree cache) are recycled, so a contraction
/// cascade that ping-pongs between two `Graph` values allocates nothing at
/// steady state. The filter runs sequentially — this is the amortized
/// serving path, which optimizes allocation traffic over span.
///
/// # Panics
/// Panics if `mapping.len() != g.n()` or a mapped id is `>= new_n`.
pub fn contract_into(g: &Graph, mapping: &[u32], new_n: usize, out: &mut Graph) {
    assert_eq!(mapping.len(), g.n());
    debug_assert!(mapping.iter().all(|&x| (x as usize) < new_n));
    out.rebuild_from_edges(
        new_n,
        g.edges().iter().filter_map(|e| {
            let nu = mapping[e.u as usize];
            let nv = mapping[e.v as usize];
            (nu != nv).then_some(Edge::new(nu, nv, e.w))
        }),
    )
    .expect("contraction of a valid graph is valid");
}

/// Composes two contraction mappings: `out[v] = second[first[v]]`.
pub fn compose_mappings(first: &[u32], second: &[u32]) -> Vec<u32> {
    first.par_iter().map(|&mid| second[mid as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_triangle_to_edge() {
        let g = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 3), (2, 0, 4)]).unwrap();
        // Merge 0 and 1 into new vertex 0; 2 becomes 1.
        let h = contract(&g, &[0, 0, 1], 2);
        assert_eq!(h.n(), 2);
        assert_eq!(h.m(), 2); // parallel edges kept: (1,2,3) and (2,0,4)
        assert_eq!(h.total_weight(), 7);
    }

    #[test]
    fn contraction_preserves_cut_values() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 30usize;
        let edges: Vec<(u32, u32, u64)> = (0..150)
            .filter_map(|_| {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                (u != v).then(|| (u, v, rng.gen_range(1..10)))
            })
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        // Random contraction into 10 groups.
        let mapping: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10) as u32).collect();
        let h = contract(&g, &mapping, 10);
        // Any cut of h lifts to a cut of g with identical value.
        for _ in 0..20 {
            let hside: Vec<bool> = (0..10).map(|_| rng.gen()).collect();
            let gside: Vec<bool> = mapping.iter().map(|&nv| hside[nv as usize]).collect();
            assert_eq!(h.cut_value(&hside), g.cut_value(&gside));
        }
    }

    #[test]
    fn contract_into_matches_contract() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 40usize;
        let edges: Vec<(u32, u32, u64)> = (0..200)
            .filter_map(|_| {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                (u != v).then(|| (u, v, rng.gen_range(1..6)))
            })
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut out = Graph::from_edges(1, &[]).unwrap();
        // The same output graph absorbs several contractions in a row.
        for groups in [12usize, 5, 9] {
            let mapping: Vec<u32> = (0..n).map(|v| (v % groups) as u32).collect();
            let want = contract(&g, &mapping, groups);
            contract_into(&g, &mapping, groups, &mut out);
            assert_eq!(out.n(), want.n());
            assert_eq!(out.m(), want.m());
            assert_eq!(out.total_weight(), want.total_weight());
            assert_eq!(out.weighted_degrees(), want.weighted_degrees());
        }
    }

    #[test]
    fn compose() {
        let first = vec![0, 1, 1, 2];
        let second = vec![5, 5, 7];
        assert_eq!(compose_mappings(&first, &second), vec![5, 5, 5, 7]);
    }

    #[test]
    fn contract_to_single_vertex() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let h = contract(&g, &[0, 0, 0, 0], 1);
        assert_eq!(h.n(), 1);
        assert_eq!(h.m(), 0);
    }
}
