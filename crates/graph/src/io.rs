//! Graph file formats.
//!
//! Two plain-text formats are supported:
//!
//! * **DIMACS-like** (`.dimacs`): `c` comment lines, one `p <n> <m>`
//!   problem line, then `m` edge lines `e <u> <v> <w>` with 1-indexed
//!   endpoints — the de-facto exchange format for cut/flow instances.
//! * **Edge list** (`.txt`): one `u v w` triple per line (0-indexed,
//!   whitespace-separated, `#` comments); the vertex count is inferred.
//!
//! Parsing is strict: malformed lines are reported with their line number
//! rather than silently skipped.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::graph::{Graph, GraphError, Weight};

/// Errors raised while reading a graph file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The parsed edges do not form a valid graph.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Largest vertex count a parsed file may declare or imply. Bounds the
/// allocation a hostile header (or a stray huge endpoint in an edge list)
/// can trigger before a single edge is validated.
pub const MAX_PARSED_VERTICES: usize = 1 << 26;

/// Largest edge count a DIMACS problem line may declare — the `reserve`
/// on a fabricated `p` line must not be able to abort the process.
pub const MAX_PARSED_EDGES: usize = 1 << 28;

/// Reads a DIMACS-like graph (`p`/`e` lines, 1-indexed endpoints).
pub fn read_dimacs<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("p") => {
                if n.is_some() {
                    return Err(parse_err(lineno, "duplicate problem line"));
                }
                // Accept `p <n> <m>` and `p <name> <n> <m>`.
                let fields: Vec<&str> = tok.collect();
                let (ns, ms) = match fields.len() {
                    2 => (fields[0], fields[1]),
                    3 => (fields[1], fields[2]),
                    _ => return Err(parse_err(lineno, "expected `p [name] n m`")),
                };
                let nv: usize = ns
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad vertex count"))?;
                let me: usize = ms
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad edge count"))?;
                if nv == 0 {
                    return Err(parse_err(lineno, "graph must have at least one vertex"));
                }
                if nv > MAX_PARSED_VERTICES {
                    return Err(parse_err(
                        lineno,
                        format!("vertex count {nv} exceeds the limit {MAX_PARSED_VERTICES}"),
                    ));
                }
                if me > MAX_PARSED_EDGES {
                    return Err(parse_err(
                        lineno,
                        format!("edge count {me} exceeds the limit {MAX_PARSED_EDGES}"),
                    ));
                }
                edges.reserve(me);
                n = Some(nv);
            }
            Some("e") | Some("a") => {
                let n = n.ok_or_else(|| parse_err(lineno, "edge before problem line"))?;
                let u: usize = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad endpoint"))?;
                let v: usize = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad endpoint"))?;
                let w: Weight = match tok.next() {
                    None => 1,
                    Some(t) => t.parse().map_err(|_| parse_err(lineno, "bad weight"))?,
                };
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(parse_err(lineno, format!("endpoint out of range 1..={n}")));
                }
                edges.push((u as u32 - 1, v as u32 - 1, w));
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown line type {other:?}")));
            }
            None => unreachable!("empty lines filtered above"),
        }
    }
    let n = n.ok_or_else(|| parse_err(0, "missing problem line"))?;
    Ok(Graph::from_edges(n, &edges)?)
}

/// Writes a graph in the DIMACS-like format.
pub fn write_dimacs<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "c parallel-mincut graph")?;
    writeln!(writer, "p cut {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(writer, "e {} {} {}", e.u + 1, e.v + 1, e.w)?;
    }
    Ok(())
}

/// Reads a whitespace edge list (`u v [w]`, 0-indexed, `#` comments —
/// DIMACS-style `c` comment lines are tolerated too, so an edge list
/// exported with a `c`-led header still parses); vertex count = max
/// endpoint + 1.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32, Weight)> = Vec::new();
    let mut max_v: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        // An endpoint can never start with `c`, so a DIMACS-style
        // comment line (`c` alone or `c <text>`) is unambiguous here.
        if line.is_empty()
            || line.starts_with('#')
            || line == "c"
            || line.starts_with("c ")
            || line.starts_with("c\t")
        {
            continue;
        }
        let mut tok = line.split_whitespace();
        let u: u32 = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad endpoint"))?;
        let v: u32 = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad endpoint"))?;
        let w: Weight = match tok.next() {
            None => 1,
            Some(t) => t.parse().map_err(|_| parse_err(lineno, "bad weight"))?,
        };
        if u as usize >= MAX_PARSED_VERTICES || v as usize >= MAX_PARSED_VERTICES {
            return Err(parse_err(
                lineno,
                format!("endpoint exceeds the vertex limit {MAX_PARSED_VERTICES}"),
            ));
        }
        max_v = max_v.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return Err(parse_err(0, "empty edge list"));
    }
    Ok(Graph::from_edges(max_v as usize + 1, &edges)?)
}

/// Reads a graph from a path, dispatching on the extension
/// (`.dimacs`/`.col`/`.max` → DIMACS, anything else → edge list).
pub fn read_path(path: &Path) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("dimacs") | Some("col") | Some("max") => read_dimacs(file),
        _ => read_edge_list(file),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let g = crate::gen::gnm_connected(30, 80, 9, 1);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let h = read_dimacs(&buf[..]).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn dimacs_with_comments_and_default_weight() {
        let text = "c a comment\n\np cut 3 2\ne 1 2\ne 2 3 5\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edges()[0].w, 1);
        assert_eq!(g.edges()[1].w, 5);
    }

    #[test]
    fn dimacs_errors_carry_line_numbers() {
        let text = "p cut 3 1\ne 1 9 2\n";
        match read_dimacs(text.as_bytes()) {
            Err(IoError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        let text = "e 1 2 3\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
        let text = "p cut 3 1\np cut 3 1\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(IoError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn dimacs_rejects_self_loop_via_graph_validation() {
        let text = "p cut 2 1\ne 1 1 4\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(IoError::Graph(GraphError::SelfLoop { .. }))
        ));
    }

    #[test]
    fn edge_list_basics() {
        let text = "# comment\n0 1 3\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.total_weight(), 4);
    }

    #[test]
    fn edge_list_skips_dimacs_style_comment_lines() {
        let text = "c legacy exporter header\n0 1 3\nc\n1 2 1\nc\ttab comment\n2 0 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_weight(), 6);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x 3\n".as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("".as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }
}
