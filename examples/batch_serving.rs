//! Batch serving: answer a stream of min-cut requests through one
//! amortized workspace.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```
//!
//! A serving loop that computes minimum cuts for many incoming graphs
//! should not rebuild its scratch memory per request. This example models
//! that shape: a queue of heterogeneous "requests" (different sizes and
//! families), answered two ways — the one-shot `solve` path and the
//! amortized `solve_batch` path sharing a single [`SolverWorkspace`] — and
//! checks they agree while timing both.

use std::time::Instant;

use parallel_mincut::graph::gen;
use parallel_mincut::{solver_by_name, Graph, SolverConfig, SolverWorkspace};

fn main() {
    // The "request queue": sparse random networks and planted-community
    // graphs of assorted sizes, as a traffic mix would deliver them.
    let mut requests: Vec<Graph> = Vec::new();
    for seed in 0..6u64 {
        requests.push(gen::gnm_connected(48 + 8 * seed as usize, 160, 8, seed));
        requests.push(gen::planted_bisection(16, 20, 30, 3, 10, 100 + seed).0);
    }

    let solver = solver_by_name("paper").expect("registry name");
    let cfg = SolverConfig::default();

    // One-shot path: every request pays its own allocations.
    let start = Instant::now();
    let one_shot: Vec<u64> = requests
        .iter()
        .map(|g| solver.solve(g, &cfg).expect("solve").value)
        .collect();
    let t_one_shot = start.elapsed();

    // Amortized path: one workspace, grown once, reused for every request.
    let start = Instant::now();
    let batch = solver.solve_batch(&requests, &cfg).expect("solve_batch");
    let t_batch = start.elapsed();

    for (i, (a, b)) in one_shot.iter().zip(&batch).enumerate() {
        assert_eq!(*a, b.value, "request {i} diverged");
    }

    println!("requests served: {}", requests.len());
    println!(
        "one-shot solve loop: {:.1} ms",
        t_one_shot.as_secs_f64() * 1e3
    );
    println!(
        "solve_batch (shared workspace): {:.1} ms",
        t_batch.as_secs_f64() * 1e3
    );

    // The workspace is also usable directly for an open-ended stream where
    // requests arrive one at a time.
    let mut ws = SolverWorkspace::new();
    let late_arrival = gen::gnm_connected(64, 200, 8, 999);
    let cut = solver
        .solve_with(&late_arrival, &cfg, &mut ws)
        .expect("solve_with");
    println!(
        "late request: n={}, min cut {} ({} crossing edges)",
        late_arrival.n(),
        cut.value,
        cut.crossing_edges(&late_arrival).len()
    );
}
