//! File-based workflow: generate a workload, persist it as DIMACS, read it
//! back, sparsify with a Nagamochi–Ibaraki certificate, compute the
//! minimum cut, and verify against the exact oracle — the full round trip
//! a benchmark or CI harness would run.
//!
//! ```sh
//! cargo run --release --example dimacs_pipeline
//! ```

use parallel_mincut::baseline::stoer_wagner;
use parallel_mincut::graph::certificate::mincut_certificate;
use parallel_mincut::graph::{gen, io};
use parallel_mincut::{minimum_cut, MinCutConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense similarity graph with one weak vertex (degree 2).
    let dense = gen::complete(120, 3, 11);
    let mut edges: Vec<(u32, u32, u64)> = dense.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    edges.push((0, 120, 2));
    let g = parallel_mincut::Graph::from_edges(121, &edges)?;

    // Persist and reload.
    let path = std::env::temp_dir().join("pmc_pipeline_demo.dimacs");
    io::write_dimacs(&g, std::fs::File::create(&path)?)?;
    let loaded = io::read_path(&path)?;
    println!(
        "wrote + reloaded {}: {} vertices, {} edges, total weight {}",
        path.display(),
        loaded.n(),
        loaded.m(),
        loaded.total_weight()
    );

    // Certificate sparsification (exact for minimum cuts).
    match mincut_certificate(&loaded) {
        Some(cert) => println!(
            "NI certificate at k = {}: kept {:.1}% of the weight ({} edges)",
            cert.k,
            100.0 * cert.kept_fraction,
            cert.graph.m()
        ),
        None => println!("certificate would not shrink this graph"),
    }

    // Minimum cut (the library applies the certificate internally).
    let cut = minimum_cut(&loaded, &MinCutConfig::default())?;
    println!("minimum cut: {} ({:?})", cut.value, cut.kind);

    // Cross-check against the deterministic exact oracle.
    let exact = stoer_wagner(&loaded).unwrap();
    assert_eq!(cut.value, exact.value, "Monte Carlo result disagrees");
    println!("verified against Stoer–Wagner: {}", exact.value);
    Ok(())
}
