//! Quickstart: build a small weighted graph and compute its minimum cut.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parallel_mincut::{minimum_cut, Graph, MinCutConfig};

fn main() {
    // A ring of six routers with one heavy shortcut. Edge weights are link
    // capacities; the minimum cut is the cheapest way to disconnect the
    // network.
    let g = Graph::from_edges(
        6,
        &[
            (0, 1, 1),
            (1, 2, 1),
            (2, 3, 1),
            (3, 4, 1),
            (4, 5, 1),
            (5, 0, 1),
            (0, 3, 5), // shortcut
        ],
    )
    .expect("valid graph");

    let cut = minimum_cut(&g, &MinCutConfig::default()).expect("graph has >= 2 vertices");

    println!("minimum cut value: {}", cut.value);
    let (a, b) = cut.partition();
    println!("partition: {a:?} vs {b:?}");
    println!("structural case: {:?}", cut.kind);

    // The result is Monte Carlo (correct w.h.p.), but the returned witness
    // always matches the returned value:
    assert_eq!(g.cut_value(&cut.side), cut.value);
    assert_eq!(cut.value, 2);

    // The same computation through the algorithm registry: any solver —
    // paper or baseline — behind the one MinCutSolver seam.
    use parallel_mincut::{solver_by_name, SolverConfig};
    for name in ["paper", "sw", "contract", "quadratic", "brute"] {
        let solver = solver_by_name(name).expect("registered");
        let cut = solver
            .solve(&g, &SolverConfig::default())
            .expect("solvable");
        println!("{:<10} -> {}", solver.name(), cut.value);
        assert_eq!(cut.value, 2);
    }
}
