//! Network reliability analysis (the paper's motivating application [15]).
//!
//! The minimum cut of a network with per-link capacities is its weakest
//! failure set: the cheapest set of links whose loss disconnects it. This
//! example builds a two-datacenter topology, finds the bottleneck with the
//! parallel minimum-cut algorithm, reinforces the crossing links, and
//! re-evaluates — the classic capacity-planning loop.
//!
//! ```sh
//! cargo run --release --example network_reliability
//! ```

use parallel_mincut::graph::gen;
use parallel_mincut::{minimum_cut, Graph, MinCutConfig};

fn main() {
    // Two well-connected datacenters (80 nodes each) joined by a handful of
    // long-haul links — a planted bottleneck whose value we know.
    let (g, expected, _) = gen::planted_bisection(80, 80, 50, 4, 120, 2024);
    println!(
        "network: {} nodes, {} links, total capacity {}",
        g.n(),
        g.m(),
        g.total_weight()
    );

    let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
    println!("\nweakest failure set: capacity {}", cut.value);
    assert_eq!(cut.value, expected);

    // Which links cross the bottleneck?
    let crossing: Vec<_> = g
        .edges()
        .iter()
        .filter(|e| cut.side[e.u as usize] != cut.side[e.v as usize])
        .collect();
    println!("crossing links ({}):", crossing.len());
    for e in &crossing {
        println!("  {:>4} -- {:<4} capacity {}", e.u, e.v, e.w);
    }

    // Capacity planning: double every crossing link and re-analyze.
    let reinforced: Vec<(u32, u32, u64)> = g
        .edges()
        .iter()
        .map(|e| {
            let w = if cut.side[e.u as usize] != cut.side[e.v as usize] {
                e.w * 2
            } else {
                e.w
            };
            (e.u, e.v, w)
        })
        .collect();
    let g2 = Graph::from_edges(g.n(), &reinforced).unwrap();
    let cut2 = minimum_cut(&g2, &MinCutConfig::default()).unwrap();
    println!(
        "\nafter reinforcing the bottleneck: capacity {}",
        cut2.value
    );
    assert!(cut2.value > cut.value);
}
