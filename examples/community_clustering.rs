//! Cluster analysis by recursive minimum cuts (the paper's motivating
//! applications [4, 13, 29]: hypertext clustering, HCS, gene expression).
//!
//! Minimum-cut clustering splits a similarity graph at its sparsest point
//! and recurses while the cut is "cheap" relative to cluster size. This
//! example plants three communities, recovers them, and prints the
//! dendrogram of splits.
//!
//! ```sh
//! cargo run --release --example community_clustering
//! ```

use parallel_mincut::{minimum_cut, Graph, MinCutConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a similarity graph with three planted communities of the given
/// sizes: dense heavy edges inside communities, a few light edges between.
fn planted_communities(sizes: &[usize], seed: u64) -> (Graph, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = sizes.iter().sum();
    let mut label = Vec::with_capacity(n);
    for (ci, &s) in sizes.iter().enumerate() {
        label.extend(std::iter::repeat_n(ci, s));
    }
    let offsets: Vec<usize> = sizes
        .iter()
        .scan(0, |acc, &s| {
            let o = *acc;
            *acc += s;
            Some(o)
        })
        .collect();
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for (ci, &s) in sizes.iter().enumerate() {
        let lo = offsets[ci];
        // Ring + random chords, weight 20 (high similarity).
        for i in 0..s {
            edges.push(((lo + i) as u32, (lo + (i + 1) % s) as u32, 20));
        }
        for _ in 0..2 * s {
            let a = (lo + rng.gen_range(0..s)) as u32;
            let b = (lo + rng.gen_range(0..s)) as u32;
            if a != b {
                edges.push((a, b, 20));
            }
        }
    }
    // Sparse light inter-community edges (weight 1).
    for ci in 0..sizes.len() {
        for cj in (ci + 1)..sizes.len() {
            for _ in 0..3 {
                let a = (offsets[ci] + rng.gen_range(0..sizes[ci])) as u32;
                let b = (offsets[cj] + rng.gen_range(0..sizes[cj])) as u32;
                edges.push((a, b, 1));
            }
        }
    }
    (Graph::from_edges(n, &edges).unwrap(), label)
}

/// Recursively splits while the min cut is cheaper than the threshold.
fn cluster(g: &Graph, vertices: Vec<u32>, threshold: u64, depth: usize, out: &mut Vec<Vec<u32>>) {
    let indent = "  ".repeat(depth);
    if vertices.len() < 4 {
        println!("{indent}leaf cluster ({} vertices)", vertices.len());
        out.push(vertices);
        return;
    }
    let sub = g.induced(&vertices);
    let cut = minimum_cut(&sub, &MinCutConfig::default()).unwrap();
    if cut.value > threshold {
        println!(
            "{indent}cluster of {} vertices (internal connectivity {} > {threshold})",
            vertices.len(),
            cut.value
        );
        out.push(vertices);
        return;
    }
    println!(
        "{indent}split {} vertices at cut value {}",
        vertices.len(),
        cut.value
    );
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (i, &v) in vertices.iter().enumerate() {
        if cut.side[i] {
            a.push(v);
        } else {
            b.push(v);
        }
    }
    cluster(g, a, threshold, depth + 1, out);
    cluster(g, b, threshold, depth + 1, out);
}

fn main() {
    let sizes = [40, 60, 50];
    let (g, truth) = planted_communities(&sizes, 7);
    println!(
        "similarity graph: {} vertices, {} edges, 3 planted communities {:?}\n",
        g.n(),
        g.m(),
        sizes
    );
    let mut clusters = Vec::new();
    cluster(&g, (0..g.n() as u32).collect(), 12, 0, &mut clusters);

    println!("\nrecovered {} clusters:", clusters.len());
    let mut pure = 0;
    for c in &clusters {
        let labels: std::collections::HashSet<usize> =
            c.iter().map(|&v| truth[v as usize]).collect();
        println!("  size {:>3}, communities touched: {:?}", c.len(), labels);
        if labels.len() == 1 {
            pure += 1;
        }
    }
    assert_eq!(
        clusters.len(),
        3,
        "expected exactly the 3 planted communities"
    );
    assert_eq!(pure, 3, "every cluster should be pure");
    println!("\nall clusters pure — communities recovered exactly");
}
