//! Direct use of the paper's §3 data structure: batched `MinPath` /
//! `AddPath` on a tree, outside the minimum-cut pipeline.
//!
//! Scenario: a file-system quota tree. Every directory has a remaining
//! quota; installing a file of size `s` under directory `v` consumes `s`
//! on the whole `v → root` path (`AddPath(v, -s)`), and an installation is
//! feasible iff the minimum remaining quota on that path stays nonnegative
//! (`MinPath(v)`). A nightly job replays the day's ledger as one batch.
//!
//! ```sh
//! cargo run --release --example minpath_batch
//! ```

use parallel_mincut::graph::gen;
use parallel_mincut::minpath::{
    decompose::{Decomposition, Strategy},
    run_tree_batch, TreeOp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 1 << 16;
    let tree = gen::random_tree(n, 99);
    let decomp = Decomposition::new(&tree, Strategy::BoughWalk);
    println!(
        "quota tree: {} directories, decomposed into {} paths over {} phases",
        n,
        decomp.npaths(),
        decomp.nphases()
    );

    // Initial quotas: generous near the root, tighter deeper down.
    let init: Vec<i64> = (0..n as u32)
        .map(|v| 1_000_000 - 900 * tree.depth(v) as i64)
        .collect();

    // A day's ledger: interleaved installs and feasibility probes.
    let mut rng = SmallRng::seed_from_u64(1);
    let k = 200_000;
    let ops: Vec<TreeOp> = (0..k)
        .map(|_| {
            let v = rng.gen_range(0..n) as u32;
            if rng.gen_bool(0.7) {
                TreeOp::Add {
                    v,
                    x: -rng.gen_range(1..50i64),
                }
            } else {
                TreeOp::Min { v }
            }
        })
        .collect();
    let nqueries = ops
        .iter()
        .filter(|o| matches!(o, TreeOp::Min { .. }))
        .count();

    let start = std::time::Instant::now();
    let results = run_tree_batch(&tree, &decomp, &init, &ops);
    let elapsed = start.elapsed();

    assert_eq!(results.len(), nqueries);
    let tightest = results.iter().min().unwrap();
    let violated = results.iter().filter(|&&r| r < 0).count();
    println!(
        "replayed {} ops ({} probes) in {:.1} ms  ({:.2} µs/op)",
        k,
        nqueries,
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / k as f64
    );
    println!("tightest remaining quota seen by any probe: {tightest}");
    println!("probes that saw an exhausted path: {violated}");
}
