//! Stage-by-stage introspection with `minimum_cut_report`: where does the
//! time go, how sparse did the certificate and skeleton make the problem,
//! and how many Minimum Path operations did the 2-respect search generate?
//!
//! ```sh
//! cargo run --release --example pipeline_report
//! ```

use parallel_mincut::core_alg::{minimum_cut_report, MinCutConfig};
use parallel_mincut::graph::gen;

fn main() {
    let workloads: Vec<(&str, parallel_mincut::Graph)> = vec![
        (
            "sparse gnm (n=4096, m=16k)",
            gen::gnm_connected(4096, 16384, 8, 1),
        ),
        (
            "planted bisection (n=2048)",
            gen::planted_bisection(1024, 1024, 40, 5, 2048, 2).0,
        ),
        ("dense + weak vertex", {
            let dense = gen::complete(300, 3, 3);
            let mut edges: Vec<(u32, u32, u64)> =
                dense.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
            edges.push((0, 300, 4));
            parallel_mincut::Graph::from_edges(301, &edges).unwrap()
        }),
    ];
    for (name, g) in &workloads {
        let (cut, r) = minimum_cut_report(g, &MinCutConfig::default()).unwrap();
        println!("== {name}");
        println!(
            "   n = {}, m = {}, min cut = {} ({:?})",
            g.n(),
            g.m(),
            cut.value,
            cut.kind
        );
        if r.certificate_applied {
            println!(
                "   certificate: kept {:.1}% of the weight ({:.1} ms)",
                100.0 * r.certificate_kept,
                r.t_certificate.as_secs_f64() * 1e3
            );
        } else {
            println!("   certificate: skipped (input already sparse)");
        }
        println!(
            "   packing: skeleton p = {:.3}, value = {:.1}, {} distinct trees, {} examined ({:.1} ms)",
            r.skeleton_p,
            r.packing_value,
            r.distinct_trees,
            r.trees_examined,
            r.t_packing.as_secs_f64() * 1e3
        );
        println!(
            "   2-respect: {} phases, {} MinPath ops total ({:.1} ms)",
            r.phases,
            r.batch_ops_total,
            r.t_two_respect.as_secs_f64() * 1e3
        );
        println!();
    }
}
