//! Targeted property tests for the exact operation patterns the
//! two-respect reduction feeds the Minimum Path engine: `±INF` guard
//! masks, point-bumps (`+INF` at `v`, `−INF` at `parent(v)`), paired
//! do/undo walks, and `−2w` accumulations. These patterns stress corners a
//! uniform random op mix rarely hits (huge magnitudes, exact
//! cancellation, queries under active masks).

use parallel_mincut::graph::{gen, RootedTree};
use parallel_mincut::minpath::{
    decompose::{Decomposition, Strategy},
    run_tree_batch, NaiveMinPath, TreeOp, INF,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn reference(tree: &RootedTree, init: &[i64], ops: &[TreeOp]) -> Vec<i64> {
    let mut naive = NaiveMinPath::new(tree, init);
    let mut out = Vec::new();
    for op in ops {
        match *op {
            TreeOp::Add { v, x } => naive.add_path(v, x),
            TreeOp::Min { v } => out.push(naive.min_path(v).0),
        }
    }
    out
}

/// Generates a gen_ops-shaped batch: per "bough walk", a leaf guard, a
/// stream of −2w adds with interleaved queries, a point-bump pair, and the
/// full undo.
fn mincut_shaped_ops(tree: &RootedTree, rng: &mut SmallRng) -> Vec<TreeOp> {
    let n = tree.n();
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1..6) {
        let leaf = rng.gen_range(0..n) as u32;
        ops.push(TreeOp::Add { v: leaf, x: INF });
        let mut undo: Vec<TreeOp> = Vec::new();
        for _ in 0..rng.gen_range(0..20) {
            let x = rng.gen_range(0..n) as u32;
            let w = 2 * rng.gen_range(1..1000i64);
            ops.push(TreeOp::Add { v: x, x: -w });
            undo.push(TreeOp::Add { v: x, x: w });
            if rng.gen_bool(0.7) {
                ops.push(TreeOp::Min {
                    v: rng.gen_range(0..n) as u32,
                });
            }
            if rng.gen_bool(0.3) {
                // point-bump pattern
                let y = rng.gen_range(0..n) as u32;
                let p = {
                    // parent or root fallback
                    let mut cand = y;
                    for v in 0..n as u32 {
                        if tree.children(v).contains(&y) {
                            cand = v;
                            break;
                        }
                    }
                    cand
                };
                ops.push(TreeOp::Add { v: y, x: INF });
                undo.push(TreeOp::Add { v: y, x: -INF });
                if p != y {
                    ops.push(TreeOp::Add { v: p, x: -INF });
                    undo.push(TreeOp::Add { v: p, x: INF });
                }
                ops.push(TreeOp::Min { v: y });
            }
        }
        undo.reverse();
        ops.extend(undo);
        ops.push(TreeOp::Add { v: leaf, x: -INF });
    }
    ops
}

#[test]
fn batch_engine_handles_guard_patterns() {
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for trial in 0..60 {
        let n = rng.gen_range(2..80);
        let tree = gen::random_tree(n, trial);
        let init: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        let ops = mincut_shaped_ops(&tree, &mut rng);
        let want = reference(&tree, &init, &ops);
        let d = Decomposition::new(&tree, Strategy::BoughWalk);
        let got = run_tree_batch(&tree, &d, &init, &ops);
        assert_eq!(got, want, "trial {trial}");
    }
}

#[test]
fn guards_fully_cancel() {
    // After a do/undo round trip the structure must answer exactly like a
    // fresh one: run the shaped batch, then append a probe query per
    // vertex and compare those probes against the un-mutated weights.
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for trial in 0..20 {
        let n = rng.gen_range(2..50);
        let tree = gen::random_tree(n, 1000 + trial);
        let init: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
        let mut ops = mincut_shaped_ops(&tree, &mut rng);
        let probes_start = ops
            .iter()
            .filter(|o| matches!(o, TreeOp::Min { .. }))
            .count();
        for v in 0..n as u32 {
            ops.push(TreeOp::Min { v });
        }
        let d = Decomposition::new(&tree, Strategy::BoughWalk);
        let got = run_tree_batch(&tree, &d, &init, &ops);
        let fresh = NaiveMinPath::new(&tree, &init);
        for v in 0..n as u32 {
            assert_eq!(
                got[probes_start + v as usize],
                fresh.min_path(v).0,
                "residue after undo at vertex {v} (trial {trial})"
            );
        }
    }
}

#[test]
fn extreme_magnitudes_do_not_overflow() {
    use parallel_mincut::minpath::MAX_ABS_WEIGHT;
    let tree = gen::path_tree(32);
    let init = vec![MAX_ABS_WEIGHT; 32];
    let mut ops = Vec::new();
    // Stack several guards at once (within the documented budget).
    for v in 0..8u32 {
        ops.push(TreeOp::Add { v, x: INF });
    }
    ops.push(TreeOp::Min { v: 31 });
    for v in 0..8u32 {
        ops.push(TreeOp::Add { v, x: -INF });
    }
    ops.push(TreeOp::Min { v: 31 });
    let d = Decomposition::new(&tree, Strategy::BoughWalk);
    let got = run_tree_batch(&tree, &d, &init, &ops);
    assert_eq!(got[1], MAX_ABS_WEIGHT);
    assert!(got[0] >= MAX_ABS_WEIGHT);
}
