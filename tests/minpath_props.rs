//! Property-based tests: the parallel batch engine is extensionally equal
//! to the naive one-op-at-a-time oracle on arbitrary trees and op
//! sequences, for both decomposition strategies.

use parallel_mincut::graph::RootedTree;
use parallel_mincut::minpath::{
    decompose::{Decomposition, Strategy as DecompStrategy},
    naive_bough_paths, run_list_batch, run_list_batch_with, run_tree_batch, run_tree_batch_with,
    ListBatchScratch, NaiveMinPath, PrefixOp, SeqMinPath, TreeBatchScratch, TreeOp,
};
use proptest::prelude::*;

/// Arbitrary parent array: vertex v attaches to some earlier vertex.
fn arb_tree(max_n: usize) -> impl Strategy<Value = RootedTree> {
    (1..max_n).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (0..n)
            .map(|v| {
                if v == 0 {
                    Just(u32::MAX).boxed()
                } else {
                    (0..v as u32).boxed()
                }
            })
            .collect();
        parents.prop_map(|p| RootedTree::from_parents(0, p))
    })
}

fn arb_ops(n: usize, max_k: usize) -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        (0..n as u32, -500i64..500, prop::bool::ANY).prop_map(|(v, x, is_add)| {
            if is_add {
                TreeOp::Add { v, x }
            } else {
                TreeOp::Min { v }
            }
        }),
        0..max_k,
    )
}

fn reference(tree: &RootedTree, init: &[i64], ops: &[TreeOp]) -> Vec<i64> {
    let mut naive = NaiveMinPath::new(tree, init);
    let mut out = Vec::new();
    for op in ops {
        match *op {
            TreeOp::Add { v, x } => naive.add_path(v, x),
            TreeOp::Min { v } => out.push(naive.min_path(v).0),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_equals_naive(
        tree in arb_tree(48),
        seed in 0u64..1000,
    ) {
        let n = tree.n();
        let mut r = rand::rngs::mock::StepRng::new(seed, 0x9e3779b97f4a7c15);
        use rand::RngCore;
        let init: Vec<i64> = (0..n).map(|_| (r.next_u32() % 2000) as i64 - 1000).collect();
        let ops: Vec<TreeOp> = (0..80)
            .map(|_| {
                let v = (r.next_u32() as usize % n) as u32;
                if r.next_u32().is_multiple_of(2) {
                    TreeOp::Add { v, x: (r.next_u32() % 600) as i64 - 300 }
                } else {
                    TreeOp::Min { v }
                }
            })
            .collect();
        let want = reference(&tree, &init, &ops);
        for strat in [DecompStrategy::BoughWalk, DecompStrategy::HeavyLight] {
            let d = Decomposition::new(&tree, strat);
            let got = run_tree_batch(&tree, &d, &init, &ops);
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn seq_structure_equals_naive(
        tree in arb_tree(48),
        ops in arb_ops(48, 120),
    ) {
        let n = tree.n();
        let ops: Vec<TreeOp> = ops.into_iter().map(|op| match op {
            TreeOp::Add { v, x } => TreeOp::Add { v: v % n as u32, x },
            TreeOp::Min { v } => TreeOp::Min { v: v % n as u32 },
        }).collect();
        let init: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 1000 - 500).collect();
        let d = Decomposition::new(&tree, DecompStrategy::BoughWalk);
        let mut seq = SeqMinPath::new(&tree, &d, &init);
        let mut naive = NaiveMinPath::new(&tree, &init);
        for op in &ops {
            match *op {
                TreeOp::Add { v, x } => {
                    seq.add_path(v, x);
                    naive.add_path(v, x);
                }
                TreeOp::Min { v } => {
                    let (gv, ga) = seq.min_path(v);
                    let (wv, _) = naive.min_path(v);
                    prop_assert_eq!(gv, wv);
                    // argmin must achieve the value
                    prop_assert_eq!(naive.weight(ga), gv);
                }
            }
        }
    }

    #[test]
    fn decomposition_invariants(tree in arb_tree(200)) {
        let n = tree.n();
        let log2n = (usize::BITS - n.leading_zeros()) as usize;
        for strat in [DecompStrategy::BoughWalk, DecompStrategy::BoughListRank, DecompStrategy::BoughRandomMate, DecompStrategy::BoughDeterministic, DecompStrategy::HeavyLight] {
            let d = Decomposition::new(&tree, strat);
            d.validate(&tree);
            for &leaf in &tree.leaves() {
                prop_assert!(d.paths_on_root_path(&tree, leaf) <= log2n.max(1));
            }
        }
    }

    #[test]
    fn bough_strategies_agree(tree in arb_tree(150)) {
        let a = Decomposition::new(&tree, DecompStrategy::BoughWalk);
        let b = Decomposition::new(&tree, DecompStrategy::BoughListRank);
        let mut pa: Vec<Vec<u32>> = a.paths_iter().map(|p| p.to_vec()).collect();
        let mut pb: Vec<Vec<u32>> = b.paths_iter().map(|p| p.to_vec()).collect();
        pa.sort();
        pb.sort();
        prop_assert_eq!(pa, pb);
        prop_assert_eq!(a.nphases(), b.nphases());
    }

    #[test]
    fn flat_decomposition_equals_naive_reference(tree in arb_tree(150)) {
        // The flat-arena BoughWalk decomposition must reproduce the naive
        // nested-Vec peel exactly: same paths, same order, same phases.
        let d = Decomposition::new(&tree, DecompStrategy::BoughWalk);
        let want = naive_bough_paths(&tree);
        prop_assert_eq!(d.npaths(), want.len());
        for (pid, (path, phase)) in want.iter().enumerate() {
            prop_assert_eq!(d.path(pid as u32), &path[..]);
            prop_assert_eq!(d.phase_of_path(pid as u32), *phase);
        }
        prop_assert_eq!(
            d.nphases(),
            want.iter().map(|(_, ph)| ph + 1).max().unwrap_or(1)
        );
    }

    #[test]
    fn flat_list_sweep_equals_allocating_reference(
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        // The flat-arena level sweep must return bit-identical (qid, value)
        // results to the allocating per-node reference, scratch reuse
        // included.
        let mut r = rand::rngs::mock::StepRng::new(seed, 0x9e3779b97f4a7c15);
        use rand::RngCore;
        let mut ws = ListBatchScratch::default();
        for round in 0..3u32 {
            let init: Vec<i64> = (0..n)
                .map(|_| (r.next_u32() % 2000) as i64 - 1000)
                .collect();
            let ops: Vec<PrefixOp> = (0..60u32)
                .map(|time| {
                    let pos = r.next_u32() % n as u32;
                    if r.next_u32().is_multiple_of(2) {
                        PrefixOp::Add { time, pos, x: (r.next_u32() % 600) as i64 - 300 }
                    } else {
                        PrefixOp::Min { time, pos, qid: time }
                    }
                })
                .collect();
            let mut want = run_list_batch(&init, &ops);
            let mut got = run_list_batch_with(&init, &ops, &mut ws);
            want.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, want, "round {}", round);
        }
    }

    #[test]
    fn flat_tree_sweep_equals_allocating_reference(
        tree in arb_tree(60),
        seed in 0u64..1000,
    ) {
        // Same equivalence one layer up: the flat counting-sort bucketing +
        // flat sweep of run_tree_batch_with against the allocating path.
        let n = tree.n();
        let mut r = rand::rngs::mock::StepRng::new(seed, 0x9e3779b97f4a7c15);
        use rand::RngCore;
        let init: Vec<i64> = (0..n).map(|_| (r.next_u32() % 2000) as i64 - 1000).collect();
        let ops: Vec<TreeOp> = (0..70)
            .map(|_| {
                let v = (r.next_u32() as usize % n) as u32;
                if r.next_u32().is_multiple_of(2) {
                    TreeOp::Add { v, x: (r.next_u32() % 600) as i64 - 300 }
                } else {
                    TreeOp::Min { v }
                }
            })
            .collect();
        let mut ws = TreeBatchScratch::default();
        for strat in [DecompStrategy::BoughWalk, DecompStrategy::HeavyLight] {
            let d = Decomposition::new(&tree, strat);
            let want = run_tree_batch(&tree, &d, &init, &ops);
            let got = run_tree_batch_with(&tree, &d, &init, &ops, &mut ws);
            prop_assert_eq!(got, want);
        }
    }
}
