//! Fuzz-style robustness tests for the graph file parsers: truncated
//! lines, overflowing counts and weights, duplicate headers, zero-vertex
//! declarations, and seeded random mutations of valid files must all
//! surface as graceful errors (convertible to `PmcError`), never as
//! panics or unbounded allocations.

use parallel_mincut::graph::io::{read_dimacs, read_edge_list, write_dimacs, IoError};
use parallel_mincut::graph::{gen, PmcError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every parser error must flow into the workspace-wide `PmcError` (the
/// CLI and suite surfaces) without losing its message.
fn as_pmc(e: IoError) -> PmcError {
    PmcError::from(e)
}

#[test]
fn dimacs_truncated_lines_are_parse_errors() {
    for text in [
        "p cut 3",        // missing edge count
        "p",              // bare problem line
        "p cut 3 2\ne 1", // edge missing endpoint
        "p cut 3 2\ne 1 2 3 trailing is ok\ne",
        "p cut 3 2\ne 1 2\ne 2", // second edge truncated
    ] {
        let err = read_dimacs(text.as_bytes()).expect_err(text);
        let msg = as_pmc(err).to_string();
        assert!(msg.contains("line"), "{text:?} -> {msg}");
    }
}

#[test]
fn dimacs_overflow_counts_and_weights_are_rejected() {
    // Weight larger than u64.
    let overflow_w = "p cut 2 1\ne 1 2 99999999999999999999999999\n";
    assert!(matches!(
        read_dimacs(overflow_w.as_bytes()),
        Err(IoError::Parse { line: 2, .. })
    ));
    // Declared edge count that would make `reserve` abort the process.
    let huge_m = "p cut 4 99999999999999999\n";
    assert!(matches!(
        read_dimacs(huge_m.as_bytes()),
        Err(IoError::Parse { line: 1, .. })
    ));
    // Declared vertex count that would allocate tens of gigabytes.
    let huge_n = "p cut 99999999999 1\ne 1 2 1\n";
    assert!(matches!(
        read_dimacs(huge_n.as_bytes()),
        Err(IoError::Parse { line: 1, .. })
    ));
    // Sum of valid weights overflowing the total-weight budget is a graph
    // error, not a wraparound.
    let sum_overflow = format!("p cut 3 2\ne 1 2 {w}\ne 2 3 {w}\n", w = u64::MAX / 2 + 1);
    assert!(matches!(
        read_dimacs(sum_overflow.as_bytes()),
        Err(IoError::Graph(_))
    ));
}

#[test]
fn dimacs_duplicate_and_missing_headers() {
    assert!(matches!(
        read_dimacs("p cut 3 1\np cut 4 1\n".as_bytes()),
        Err(IoError::Parse { line: 2, .. })
    ));
    assert!(matches!(
        read_dimacs("c only comments\n".as_bytes()),
        Err(IoError::Parse { .. })
    ));
    assert!(matches!(
        read_dimacs("e 1 2 1\n".as_bytes()),
        Err(IoError::Parse { line: 1, .. })
    ));
}

#[test]
fn dimacs_zero_vertex_graphs_are_rejected() {
    for text in ["p cut 0 0\n", "p cut 0 1\ne 1 1 1\n"] {
        let err = read_dimacs(text.as_bytes()).expect_err(text);
        let msg = as_pmc(err).to_string();
        assert!(msg.contains("line 1"), "{text:?} -> {msg}");
    }
}

#[test]
fn edge_list_hostile_inputs_are_graceful() {
    // Endpoint implying a ~4-billion-vertex graph must not allocate.
    assert!(matches!(
        read_edge_list("0 4294967295 1\n".as_bytes()),
        Err(IoError::Parse { line: 1, .. })
    ));
    // Truncated, overflowing, and garbage lines.
    for text in [
        "0\n",
        "0 1 99999999999999999999999\n",
        "0 -1 1\n",
        "zero one\n",
        "",
    ] {
        assert!(
            matches!(read_edge_list(text.as_bytes()), Err(IoError::Parse { .. })),
            "{text:?}"
        );
    }
    // Self-loops are graph errors with the offending context preserved.
    assert!(matches!(
        read_edge_list("3 3 1\n".as_bytes()),
        Err(IoError::Graph(_))
    ));
}

#[test]
fn seeded_mutation_fuzz_never_panics() {
    // Take a valid DIMACS file and a valid edge list, apply seeded random
    // byte mutations (flips, truncations, duplications), and require the
    // parsers to return — Ok or Err, never panic. Runs a deterministic
    // corpus of a few hundred mutants.
    let g = gen::gnm_connected(20, 45, 9, 7);
    let mut dimacs = Vec::new();
    write_dimacs(&g, &mut dimacs).unwrap();
    let edge_list: Vec<u8> = g
        .edges()
        .iter()
        .map(|e| format!("{} {} {}\n", e.u, e.v, e.w))
        .collect::<String>()
        .into_bytes();

    let mut rng = SmallRng::seed_from_u64(0xF422);
    for round in 0..300 {
        for base in [&dimacs, &edge_list] {
            let mut mutant = base.clone();
            match rng.gen_range(0..4u32) {
                0 => {
                    // Flip a byte to a random printable-ish character.
                    let i = rng.gen_range(0..mutant.len());
                    mutant[i] = rng.gen_range(0x20..0x7Fu32) as u8;
                }
                1 => {
                    // Truncate mid-file (possibly mid-line).
                    let i = rng.gen_range(0..mutant.len());
                    mutant.truncate(i);
                }
                2 => {
                    // Duplicate a slice (can duplicate the p-line).
                    let i = rng.gen_range(0..mutant.len());
                    let j = rng.gen_range(i..mutant.len());
                    let slice: Vec<u8> = mutant[i..j].to_vec();
                    mutant.extend_from_slice(&slice);
                }
                _ => {
                    // Inject a hostile token at a random line start.
                    let tokens: [&[u8]; 4] = [
                        b"p cut 0 0\n",
                        b"e 0 0 0\n",
                        b"99999999999 1 1\n",
                        b"p cut 18446744073709551615 2\n",
                    ];
                    let t = tokens[rng.gen_range(0..tokens.len())];
                    let mut i = rng.gen_range(0..=mutant.len());
                    while i > 0 && mutant[i - 1] != b'\n' {
                        i -= 1;
                    }
                    mutant.splice(i..i, t.iter().copied());
                }
            }
            // Both parsers must return gracefully on both mutants, and
            // errors must render a displayable PmcError.
            if let Err(e) = read_dimacs(&mutant[..]) {
                assert!(!as_pmc(e).to_string().is_empty(), "round {round}");
            }
            if let Err(e) = read_edge_list(&mutant[..]) {
                assert!(!as_pmc(e).to_string().is_empty(), "round {round}");
            }
        }
    }
}
