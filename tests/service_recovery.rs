//! Crash-recovery e2e: SIGKILL a `pmc serve --journal` child mid
//! update-stream, restart it on the same journal, and hold it to the
//! durability contract — every acknowledged update is present after
//! replay, and the recovered store answers solves bit-identically to a
//! run that was never interrupted.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn pmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmc"))
}

fn tmp_journal(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pmc-recovery-{}-{name}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A weighted cycle with one heavy edge; minimum cut 2.
fn graph_body() -> String {
    let n = 8;
    let mut s = format!("p cut {n} {n}\n");
    for i in 1..=n {
        let j = i % n + 1;
        let w = if i == 1 { 5 } else { 1 };
        s.push_str(&format!("e {i} {j} {w}\n"));
    }
    s
}

fn load_frame(body: &str) -> String {
    format!(
        "{{\"op\":\"load\",\"body\":\"{}\"}}",
        body.replace('\n', "\\n")
    )
}

fn update_frame(id: &str, w: u64, seed: u64) -> String {
    format!(
        "{{\"op\":\"update\",\"graph\":\"{id}\",\"ops\":[{{\"kind\":\"reweight_edge\",\"u\":2,\"v\":3,\"w\":{w}}}],\"seed\":{seed}}}"
    )
}

fn solve_frame(id: &str) -> String {
    format!("{{\"op\":\"solve\",\"graph\":\"{id}\",\"solver\":\"paper\",\"seed\":7}}")
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("{key} value in {line}"));
    rest[..end].trim_matches('"')
}

/// A serve child we talk to interactively: one frame out, one ack back.
/// Scripted sessions can't SIGKILL "after the k-th ack", so the
/// request/response lockstep lives here.
struct Interactive {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Interactive {
    fn spawn(args: &[&str]) -> Self {
        let mut child = pmc()
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pmc serve");
        let stdin = child.stdin.take().expect("stdin");
        let stdout = BufReader::new(child.stdout.take().expect("stdout"));
        Interactive {
            child,
            stdin,
            stdout,
        }
    }

    fn roundtrip(&mut self, frame: &str) -> String {
        writeln!(self.stdin, "{frame}").expect("write frame");
        self.stdin.flush().expect("flush frame");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read ack");
        assert!(!line.is_empty(), "serve closed before answering {frame}");
        line.trim_end().to_string()
    }

    /// SIGKILL — no drain, no shutdown frame, no journal close.
    fn kill(mut self) {
        self.child.kill().expect("kill serve child");
        self.child.wait().expect("reap serve child");
    }
}

/// Drives `load` + `count` acknowledged updates through an interactive
/// session, returning every response line plus the final graph id.
fn drive_updates(session: &mut Interactive, count: usize) -> (Vec<String>, String) {
    let mut lines = vec![session.roundtrip(&load_frame(&graph_body()))];
    let mut id = field(&lines[0], "id").to_string();
    for k in 0..count {
        let ack = session.roundtrip(&update_frame(&id, 10 + k as u64, k as u64));
        assert_eq!(field(&ack, "ok"), "true", "update {k} not acked: {ack}");
        id = field(&ack, "id").to_string();
        lines.push(ack);
    }
    (lines, id)
}

#[test]
fn sigkill_mid_stream_loses_no_acknowledged_update() {
    const UPDATES: usize = 6;
    let journal = tmp_journal("sigkill");
    let journal_arg = journal.to_str().expect("utf-8 temp path").to_string();

    // Uninterrupted baseline: same workload against a journal-less
    // service, straight through to the final solve.
    let mut baseline = Interactive::spawn(&["--no-timing"]);
    let (baseline_acks, baseline_id) = drive_updates(&mut baseline, UPDATES);
    let baseline_solve = baseline.roundtrip(&solve_frame(&baseline_id));
    let shutdown = baseline.roundtrip("{\"op\":\"shutdown\"}");
    assert_eq!(field(&shutdown, "ok"), "true", "{shutdown}");
    assert!(baseline.child.wait().expect("baseline exit").success());

    // The victim: same workload, journaled — killed right after the
    // last acknowledgement, mid-session, with no chance to flush or
    // shut down cleanly.
    let mut victim = Interactive::spawn(&["--no-timing", "--journal", &journal_arg]);
    let (victim_acks, victim_id) = drive_updates(&mut victim, UPDATES);
    assert_eq!(
        victim_acks, baseline_acks,
        "journaling must not change acknowledged responses"
    );
    victim.kill();

    // Restart on the same journal. Replay must reconstruct every
    // acknowledged commit: the final re-keyed id answers, and its
    // solve is byte-identical to the uninterrupted run's.
    let mut revived = Interactive::spawn(&["--no-timing", "--journal", &journal_arg]);
    let solve = revived.roundtrip(&solve_frame(&victim_id));
    assert_eq!(
        solve, baseline_solve,
        "recovered store must answer bit-identically to the uninterrupted run"
    );
    let stats = revived.roundtrip("{\"op\":\"stats\"}");
    // One load record plus one record per acknowledged update, all
    // replayed, none truncated (every frame was fsynced before its ack).
    assert_eq!(field(&stats, "replayed"), (1 + UPDATES).to_string());
    assert_eq!(field(&stats, "truncated"), "0");
    let shutdown = revived.roundtrip("{\"op\":\"shutdown\"}");
    assert_eq!(field(&shutdown, "ok"), "true", "{shutdown}");
    assert!(revived.child.wait().expect("revived exit").success());

    let _ = std::fs::remove_file(&journal);
}

/// A journal with a torn tail — half a frame, as a crash mid-write
/// leaves behind under `--fsync never` — must not block recovery: the
/// torn record is dropped, every whole record replays.
#[test]
fn torn_tail_is_truncated_and_the_rest_replays() {
    const UPDATES: usize = 3;
    let journal = tmp_journal("torn");
    let journal_arg = journal.to_str().expect("utf-8 temp path").to_string();

    let mut victim = Interactive::spawn(&["--no-timing", "--journal", &journal_arg]);
    let (_, id) = drive_updates(&mut victim, UPDATES);
    victim.kill();

    // Simulate the torn write: append garbage that looks like the
    // start of a frame but ends mid-payload.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal for tearing");
    f.write_all(&[0x40, 0, 0, 0, 0, 0, 0, 0, 0xde, 0xad])
        .expect("tear");
    drop(f);

    let mut revived = Interactive::spawn(&["--no-timing", "--journal", &journal_arg]);
    let solve = revived.roundtrip(&solve_frame(&id));
    assert_eq!(field(&solve, "ok"), "true", "{solve}");
    let stats = revived.roundtrip("{\"op\":\"stats\"}");
    assert_eq!(field(&stats, "replayed"), (1 + UPDATES).to_string());
    assert_ne!(field(&stats, "truncated"), "0", "{stats}");
    let shutdown = revived.roundtrip("{\"op\":\"shutdown\"}");
    assert_eq!(field(&shutdown, "ok"), "true", "{shutdown}");
    assert!(revived.child.wait().expect("revived exit").success());

    let _ = std::fs::remove_file(&journal);
}
