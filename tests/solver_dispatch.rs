//! Integration tests of the `MinCutSolver` dispatch seam through the
//! facade: every registered algorithm must agree on the minimum cut value
//! of fixed seeded graphs and produce valid witnesses.

use parallel_mincut::graph::gen;
use parallel_mincut::{solver_by_name, solver_names, solvers, Graph, PmcError, SolverConfig};

/// Fixed seeded instance small enough for every solver (brute included).
fn fixed_small() -> Graph {
    gen::gnm_connected(16, 40, 7, 0xA11CE)
}

#[test]
fn all_solvers_agree_on_fixed_seeded_graph() {
    let g = fixed_small();
    let cfg = SolverConfig::with_seed(42);
    let reference = solver_by_name("sw").unwrap().solve(&g, &cfg).unwrap().value;
    for solver in solvers() {
        let cut = solver.solve(&g, &cfg).unwrap();
        assert_eq!(cut.value, reference, "solver {}", solver.name());
        assert_eq!(cut.algorithm, solver.name());
        assert!(g.is_proper_cut(&cut.side), "solver {}", solver.name());
        assert_eq!(
            g.cut_value(&cut.side),
            cut.value,
            "solver {}",
            solver.name()
        );
    }
}

#[test]
fn all_solvers_agree_on_structured_families() {
    // Families with known minimum cuts; brute excluded where n > 24.
    let cases: Vec<(Graph, u64)> = vec![
        (gen::barbell(8), 1),
        (gen::cycle_with_chords(40, 0, 0), 2),
        (gen::grid(5, 6), 2),
    ];
    let cfg = SolverConfig::with_seed(7);
    for (g, want) in cases {
        for name in ["paper", "sw", "contract", "quadratic"] {
            let cut = solver_by_name(name).unwrap().solve(&g, &cfg).unwrap();
            assert_eq!(cut.value, want, "solver {name} on n={}", g.n());
        }
    }
}

#[test]
fn registry_exposes_expected_names() {
    assert_eq!(
        solver_names(),
        vec!["paper", "sw", "contract", "quadratic", "brute"]
    );
    assert!(matches!(
        solver_by_name("not-a-solver"),
        Err(PmcError::UnknownAlgorithm(_))
    ));
}

#[test]
fn seeds_change_randomness_not_answers() {
    let g = fixed_small();
    let want = solver_by_name("sw")
        .unwrap()
        .solve(&g, &SolverConfig::default())
        .unwrap()
        .value;
    for seed in [0u64, 1, 99, 0xDEAD_BEEF] {
        for name in ["paper", "contract", "quadratic"] {
            let cut = solver_by_name(name)
                .unwrap()
                .solve(&g, &SolverConfig::with_seed(seed))
                .unwrap();
            assert_eq!(cut.value, want, "solver {name} seed {seed}");
        }
    }
}

#[test]
fn errors_are_uniform_across_the_seam() {
    let singleton = Graph::from_edges(1, &[]).unwrap();
    for solver in solvers() {
        assert_eq!(
            solver
                .solve(&singleton, &SolverConfig::default())
                .unwrap_err(),
            PmcError::TooSmall,
            "solver {}",
            solver.name()
        );
    }
    let big = gen::gnm_connected(30, 60, 4, 5);
    assert!(matches!(
        solver_by_name("brute")
            .unwrap()
            .solve(&big, &SolverConfig::default()),
        Err(PmcError::Unsupported {
            algorithm: "brute",
            ..
        })
    ));
}
