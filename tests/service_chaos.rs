//! Chaos tests: the service under deterministic seeded fault injection.
//!
//! The invariant under test is the issue's acceptance criterion: with
//! faults firing — worker panics, solve delays past the deadline,
//! journal write errors — every request still gets exactly one
//! structured response (success, `timed_out`, `overloaded`, or
//! `internal_error`), the process never dies, admission permits and
//! pooled workspaces fully drain, and a journal written under fire
//! replays exactly the acknowledged commits.

use parallel_mincut::service::faults::FaultPlan;
use parallel_mincut::service::protocol::UpdateOp;
use parallel_mincut::service::{ErrorKind, LoadSource, Request, Response, Service, ServiceConfig};

fn tmp_journal(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmc-chaos-{}-{name}.journal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

const BODY: &str = "p cut 6 6\ne 1 2 4\ne 2 3 1\ne 3 4 1\ne 4 5 1\ne 5 6 1\ne 6 1 1\n";

/// Drives a long mixed session against a fault-injecting service and
/// checks the exactly-one-structured-response invariant plus full
/// permit/pool drain. Deterministic: same seed, same fault sequence.
#[test]
fn faulty_session_answers_every_request_and_drains() {
    let path = tmp_journal("session");
    let cfg = ServiceConfig {
        threads: 2,
        cache_shards: 1,
        timing: false,
        request_timeout_ms: 10,
        journal: Some(path.clone()),
        faults: Some(
            FaultPlan::parse("7:panic=0.25,delay=0.2,delay_ms=40,journal=0.25,short=0.15").unwrap(),
        ),
        ..ServiceConfig::default()
    };
    let service = Service::new(&cfg);

    // The id of the resident graph, re-keyed as updates commit. A load
    // whose journal append fails answers internal_error without an id,
    // so the driver re-loads until acknowledged — exactly what a real
    // client does after internal_error.
    let mut id: Option<String> = None;
    let mut acked_updates: Vec<String> = Vec::new();
    let mut weight = 4u64;
    for round in 0..80u64 {
        let req = match (&id, round % 4) {
            (None, _) => Request::Load(LoadSource::Body(BODY.into())),
            (Some(_), 0) => Request::Load(LoadSource::Body(BODY.into())),
            (Some(g), 1) => {
                weight = if weight == 4 { 9 } else { 4 };
                Request::Update {
                    graph: g.clone(),
                    ops: vec![UpdateOp::ReweightEdge {
                        u: 1,
                        v: 2,
                        w: weight,
                    }],
                    seed: round,
                    deadline_ms: None,
                }
            }
            (Some(g), 2) => Request::Solve {
                graphs: vec![g.clone()],
                solver: "paper".into(),
                seed: round,
                deadline_ms: None,
            },
            (Some(_), _) => Request::Stats,
        };
        let (resp, stop) = service.handle(&req);
        assert!(!stop, "round {round}: nothing here requests shutdown");
        // Exactly one structured response, from the allowed set.
        match resp {
            Response::Loaded { id: got, .. } => id = Some(got),
            Response::Updated { id: got, .. } => {
                acked_updates.push(got.clone());
                id = Some(got);
            }
            Response::Solved { .. } | Response::Stats(_) => {}
            Response::Error(e) => {
                assert!(
                    matches!(
                        e.kind,
                        ErrorKind::TimedOut | ErrorKind::Overloaded | ErrorKind::Internal
                    ),
                    "round {round}: unexpected error kind {:?}: {}",
                    e.kind,
                    e.detail
                );
                // After an error on a load or update the resident id is
                // indeterminate (a journal-append failure commits the
                // mutation but withholds the ack), so force a re-load
                // rather than guessing — exactly what a real client
                // does after `internal_error`.
                if matches!(req, Request::Load(_) | Request::Update { .. }) {
                    id = None;
                }
            }
            other => panic!("round {round}: unexpected response {other:?}"),
        }
    }

    let s = service.stats_snapshot();
    // The seed is chosen to actually exercise the fault paths; if these
    // fire zero times the test is vacuous, so pin them as nonzero.
    assert!(s.faults.injected > 0, "no faults fired: {s:?}");
    assert!(s.faults.panics > 0, "no panics isolated: {s:?}");
    assert!(s.journal.errors > 0, "no journal faults: {s:?}");
    // Full drain: no permit leaked through any panic/timeout/error
    // path, and every surviving workspace is back in the pool.
    assert_eq!(s.admission.inflight, 0, "permits leaked: {s:?}");
    assert!(
        s.pool.available > 0,
        "workspaces never returned to the pool: {s:?}"
    );
    // Every acknowledged update carries exactly one journal record
    // (loads add more); a failed append rolls back and never acks.
    assert!(
        s.journal.records >= acked_updates.len() as u64,
        "acked more updates than journaled: {s:?}"
    );
    let journaled = s.journal.records;
    drop(service);

    // The journal written under fire replays cleanly: every record it
    // accepted (= every acknowledged commit) comes back, and the store
    // still answers for the last acknowledged id.
    let replayed = Service::open(&ServiceConfig {
        faults: None,
        ..cfg.clone()
    })
    .expect("journal written under injected faults must replay");
    let s2 = replayed.stats_snapshot();
    assert_eq!(s2.journal.replayed, journaled);
    assert_eq!(s2.journal.truncated, 0, "no torn tail on a live close");
    if let Some(g) = id {
        let (resp, _) = replayed.handle(&Request::Solve {
            graphs: vec![g],
            solver: "paper".into(),
            seed: 0,
            deadline_ms: None,
        });
        assert!(
            matches!(resp, Response::Solved { .. }),
            "last acknowledged id must survive recovery: {resp:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Same seed, same session, same faults: the chaos run is replayable,
/// which is what makes fault bugs debuggable.
#[test]
fn fault_sequences_are_deterministic_per_seed() {
    let run = || -> Vec<String> {
        let service = Service::new(&ServiceConfig {
            threads: 1,
            cache_shards: 1,
            timing: false,
            faults: Some(FaultPlan::parse("11:panic=0.4").unwrap()),
            ..ServiceConfig::default()
        });
        let (resp, _) = service.handle(&Request::Load(LoadSource::Body(BODY.into())));
        let Response::Loaded { id, .. } = resp else {
            panic!("{resp:?}")
        };
        (0..24)
            .map(|seed| {
                service
                    .handle(&Request::Solve {
                        graphs: vec![id.clone()],
                        solver: "paper".into(),
                        seed,
                        deadline_ms: None,
                    })
                    .0
                    .to_frame()
            })
            .collect()
    };
    assert_eq!(run(), run());
}

/// With injection configured but every probability at its default 0,
/// the injector must be inert: responses match a fault-free service
/// frame for frame (the "faults disabled ⇒ byte-identical" criterion).
#[test]
fn zero_probability_injection_changes_nothing() {
    let session = |faults: Option<FaultPlan>| -> Vec<String> {
        let service = Service::new(&ServiceConfig {
            threads: 2,
            cache_shards: 1,
            timing: false,
            faults,
            ..ServiceConfig::default()
        });
        let (resp, _) = service.handle(&Request::Load(LoadSource::Body(BODY.into())));
        let Response::Loaded { id, .. } = resp else {
            panic!("{resp:?}")
        };
        let mut frames = vec![];
        for seed in 0..6 {
            frames.push(
                service
                    .handle(&Request::Solve {
                        graphs: vec![id.clone()],
                        solver: "paper".into(),
                        seed,
                        deadline_ms: None,
                    })
                    .0
                    .to_frame(),
            );
        }
        frames.push(service.handle(&Request::Stats).0.to_frame());
        frames
    };
    assert_eq!(
        session(None),
        session(Some(FaultPlan::parse("3:").unwrap()))
    );
}
