//! Large-scale smoke tests. Ignored by default (minutes of runtime);
//! run explicitly with:
//!
//! ```sh
//! cargo test --release --test scale -- --ignored
//! ```

use parallel_mincut::core_alg::{minimum_cut_report, MinCutConfig};
use parallel_mincut::graph::gen;
use parallel_mincut::minpath::{
    decompose::{Decomposition, Strategy},
    run_tree_batch, TreeOp,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
#[ignore = "large: ~1 minute in release"]
fn planted_cut_at_sixty_five_thousand_vertices() {
    let half = 1 << 15;
    let (g, value, side) = gen::planted_bisection(half, half, 60, 6, 2 * half, 3);
    let (cut, report) = minimum_cut_report(&g, &MinCutConfig::default()).unwrap();
    assert_eq!(cut.value, value);
    let same = cut.side == side;
    let comp = cut.side.iter().zip(&side).all(|(a, b)| a != b);
    assert!(same || comp);
    assert!(report.phases <= 17, "phase count must stay logarithmic");
}

#[test]
#[ignore = "large: ~1 minute in release"]
fn million_op_minpath_batch() {
    let n = 1 << 18;
    let tree = gen::random_tree(n, 4);
    let decomp = Decomposition::new(&tree, Strategy::BoughWalk);
    let init: Vec<i64> = (0..n as i64).map(|i| (i * 11) % 4096).collect();
    let mut rng = SmallRng::seed_from_u64(5);
    let k = 1 << 20;
    let ops: Vec<TreeOp> = (0..k)
        .map(|_| {
            let v = rng.gen_range(0..n) as u32;
            if rng.gen_bool(0.5) {
                TreeOp::Add {
                    v,
                    x: rng.gen_range(-100..100),
                }
            } else {
                TreeOp::Min { v }
            }
        })
        .collect();
    let results = run_tree_batch(&tree, &decomp, &init, &ops);
    // Spot-check a sample of queries against the naive oracle.
    let mut naive = parallel_mincut::minpath::NaiveMinPath::new(&tree, &init);
    let mut qi = 0usize;
    let mut checked = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            TreeOp::Add { v, x } => naive.add_path(v, x),
            TreeOp::Min { v } => {
                if i % 1013 == 0 {
                    assert_eq!(results[qi], naive.min_path(v).0, "query {qi}");
                    checked += 1;
                }
                qi += 1;
            }
        }
    }
    assert!(checked > 100, "sample too small: {checked}");
}

#[test]
#[ignore = "large: ~30 seconds in release"]
fn deep_path_graph_stress() {
    // A 100k-vertex near-path graph: single bough, maximal-depth lists.
    let n = 100_000;
    let mut edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1, 5)).collect();
    let mut rng = SmallRng::seed_from_u64(8);
    for _ in 0..n / 10 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            edges.push((u, v, 1));
        }
    }
    let g = parallel_mincut::Graph::from_edges(n, &edges).unwrap();
    let (cut, _) = minimum_cut_report(&g, &MinCutConfig::default()).unwrap();
    assert!(g.is_proper_cut(&cut.side));
    assert_eq!(g.cut_value(&cut.side), cut.value);
}
