//! Property tests for the amortized solve seam: for every registered
//! solver, `solve_batch` (one shared [`SolverWorkspace`] across the batch)
//! is extensionally equal to calling `solve` on each graph in order — same
//! values, same witness partitions — across random `gnm_connected` and
//! `planted_bisection` workloads. This is the load-bearing guarantee of
//! the workspace design: an arena, never a cache.

use parallel_mincut::graph::gen;
use parallel_mincut::{solvers, Graph, MinCutSolver, SolverConfig, SolverWorkspace};
use proptest::prelude::*;

/// A random batch mixing both workload families. Sizes stay within the
/// `brute` solver's `n ≤ 24` enumeration bound so every registered solver
/// can run on every graph.
fn arb_batch() -> impl Strategy<Value = Vec<Graph>> {
    prop::collection::vec(
        (6usize..20, 1usize..4, 0u64..10_000, prop::bool::ANY).prop_map(
            |(n, density, seed, planted)| {
                if planted {
                    let half = (n / 2).max(3);
                    gen::planted_bisection(half, half, 20, 2, half, seed).0
                } else {
                    gen::gnm_connected(n, density * n, 8, seed)
                }
            },
        ),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn solve_batch_equals_sequential_solves(graphs in arb_batch(), seed in 0u64..1000) {
        let cfg = SolverConfig::with_seed(seed);
        for solver in solvers() {
            let batch = solver.solve_batch(&graphs, &cfg).unwrap();
            prop_assert_eq!(batch.len(), graphs.len());
            for (g, got) in graphs.iter().zip(&batch) {
                let want = solver.solve(g, &cfg).unwrap();
                prop_assert_eq!(got.value, want.value, "solver {}", solver.name());
                prop_assert_eq!(&got.side, &want.side, "solver {}", solver.name());
                prop_assert!(g.is_proper_cut(&got.side), "solver {}", solver.name());
                prop_assert_eq!(g.cut_value(&got.side), got.value, "solver {}", solver.name());
            }
        }
    }

    #[test]
    fn one_workspace_survives_interleaved_solvers(graphs in arb_batch(), seed in 0u64..1000) {
        // A single workspace shared across *different* solvers and graphs
        // must never leak state between solves.
        let cfg = SolverConfig::with_seed(seed);
        let mut ws = SolverWorkspace::new();
        let all: Vec<Box<dyn MinCutSolver>> = solvers();
        for (i, g) in graphs.iter().enumerate() {
            for solver in &all {
                let got = solver.solve_with(g, &cfg, &mut ws).unwrap();
                let want = solver.solve(g, &cfg).unwrap();
                prop_assert_eq!(got.value, want.value, "graph {} solver {}", i, solver.name());
                prop_assert_eq!(&got.side, &want.side, "graph {} solver {}", i, solver.name());
            }
        }
    }
}
