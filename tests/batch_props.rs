//! Property tests for the amortized solve seam: for every registered
//! solver, `solve_batch` (one shared [`SolverWorkspace`] across the batch)
//! is extensionally equal to calling `solve` on each graph in order — same
//! values, same witness partitions — across random `gnm_connected` and
//! `planted_bisection` workloads. This is the load-bearing guarantee of
//! the workspace design: an arena, never a cache.

use parallel_mincut::graph::gen;
use parallel_mincut::{
    solver_by_name, solvers, Graph, MinCutSolver, SolverConfig, SolverWorkspace, WorkspacePool,
};
use proptest::prelude::*;

/// A random batch mixing both workload families. Sizes stay within the
/// `brute` solver's `n ≤ 24` enumeration bound so every registered solver
/// can run on every graph.
fn arb_batch() -> impl Strategy<Value = Vec<Graph>> {
    prop::collection::vec(
        (6usize..20, 1usize..4, 0u64..10_000, prop::bool::ANY).prop_map(
            |(n, density, seed, planted)| {
                if planted {
                    let half = (n / 2).max(3);
                    gen::planted_bisection(half, half, 20, 2, half, seed).0
                } else {
                    gen::gnm_connected(n, density * n, 8, seed)
                }
            },
        ),
        1..5,
    )
}

/// Above the fan-out gate (the proptest batches stay below it): graphs
/// guaranteed large enough that thread budgets > 1 really spawn OS
/// workers for the per-tree loop, checked bit-identical against the
/// sequential budget. The gate tests the *certificate-sparsified* edge
/// count, so the certificate is disabled here — otherwise a sparse seed
/// can fall back below the gate and the multi-worker assertion goes
/// vacuous.
#[test]
fn paper_fanout_path_bit_identical_across_thread_counts() {
    use parallel_mincut::core_alg::MinCutConfig;
    use parallel_mincut::minimum_cut_with;

    for seed in 0..3u64 {
        let g = gen::gnm_connected(192, 576, 8, 900 + seed); // m >= fan-out gate
        let mk = |threads: Option<usize>| MinCutConfig {
            seed,
            threads,
            use_certificate: false, // keep work_graph.m() == 576, above the gate
            ..MinCutConfig::default()
        };
        let mut ws = SolverWorkspace::new();
        let base = minimum_cut_with(&g, &mk(Some(1)), &mut ws).unwrap();
        for t in [2usize, 8] {
            let mut ws_t = SolverWorkspace::new();
            let got = minimum_cut_with(&g, &mk(Some(t)), &mut ws_t).unwrap();
            assert_eq!(got.value, base.value, "threads {t} seed {seed}");
            assert_eq!(got.side, base.side, "threads {t} seed {seed}");
            assert_eq!(got.kind, base.kind, "threads {t} seed {seed}");
            assert_eq!(got.tree_index, base.tree_index, "threads {t} seed {seed}");
        }
        // The dispatch + pooled-batch layers agree too, at every width
        // (these run the default certificate policy; agreement with the
        // certificate-free run is part of the check).
        let paper = solver_by_name("paper").unwrap();
        let pool = WorkspacePool::new();
        for t in [1usize, 2, 8] {
            let cfg = SolverConfig {
                threads: Some(t),
                ..SolverConfig::with_seed(seed)
            };
            let got = paper.solve(&g, &cfg).unwrap();
            assert_eq!(got.value, base.value, "solve threads {t} seed {seed}");
            let batch = paper
                .solve_batch_pooled(std::slice::from_ref(&g), &cfg, &pool)
                .unwrap();
            assert_eq!(batch[0].value, base.value, "pooled threads {t}");
            assert_eq!(batch[0].side, got.side, "pooled threads {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn solve_batch_equals_sequential_solves(graphs in arb_batch(), seed in 0u64..1000) {
        let cfg = SolverConfig::with_seed(seed);
        for solver in solvers() {
            let batch = solver.solve_batch(&graphs, &cfg).unwrap();
            prop_assert_eq!(batch.len(), graphs.len());
            for (g, got) in graphs.iter().zip(&batch) {
                let want = solver.solve(g, &cfg).unwrap();
                prop_assert_eq!(got.value, want.value, "solver {}", solver.name());
                prop_assert_eq!(&got.side, &want.side, "solver {}", solver.name());
                prop_assert!(g.is_proper_cut(&got.side), "solver {}", solver.name());
                prop_assert_eq!(g.cut_value(&got.side), got.value, "solver {}", solver.name());
            }
        }
    }

    #[test]
    fn paper_results_bit_identical_across_thread_counts(graphs in arb_batch(), seed in 0u64..1000) {
        // The per-tree fan-out must be invisible in the results: cut value,
        // witness side, structural kind, and winning tree index all agree
        // between thread budgets 1, 2, and 8 (and the budget-free default).
        let paper = solver_by_name("paper").unwrap();
        for g in &graphs {
            let base = paper.solve(g, &SolverConfig::with_seed(seed)).unwrap();
            for t in [1usize, 2, 8] {
                let cfg = SolverConfig { threads: Some(t), ..SolverConfig::with_seed(seed) };
                let got = paper.solve(g, &cfg).unwrap();
                prop_assert_eq!(got.value, base.value, "threads {}", t);
                prop_assert_eq!(&got.side, &base.side, "threads {}", t);
                prop_assert_eq!(got.kind, base.kind, "threads {}", t);
                prop_assert_eq!(got.tree_index, base.tree_index, "threads {}", t);
            }
        }
    }

    #[test]
    fn pooled_batch_equals_sequential_solves(graphs in arb_batch(), seed in 0u64..1000) {
        // solve_batch_pooled (OS-worker fan-out over a WorkspacePool) is
        // extensionally equal to one-shot solves, at every worker count.
        let pool = WorkspacePool::new();
        for t in [1usize, 2, 8] {
            let cfg = SolverConfig { threads: Some(t), ..SolverConfig::with_seed(seed) };
            for solver in solvers() {
                let batch = solver.solve_batch_pooled(&graphs, &cfg, &pool).unwrap();
                prop_assert_eq!(batch.len(), graphs.len());
                for (g, got) in graphs.iter().zip(&batch) {
                    let want = solver.solve(g, &cfg).unwrap();
                    prop_assert_eq!(got.value, want.value, "solver {} threads {}", solver.name(), t);
                    prop_assert_eq!(&got.side, &want.side, "solver {} threads {}", solver.name(), t);
                }
            }
        }
        // Every checked-out workspace returned to the pool.
        prop_assert!(!pool.is_empty());
    }

    #[test]
    fn one_workspace_survives_interleaved_solvers(graphs in arb_batch(), seed in 0u64..1000) {
        // A single workspace shared across *different* solvers and graphs
        // must never leak state between solves.
        let cfg = SolverConfig::with_seed(seed);
        let mut ws = SolverWorkspace::new();
        let all: Vec<Box<dyn MinCutSolver>> = solvers();
        for (i, g) in graphs.iter().enumerate() {
            for solver in &all {
                let got = solver.solve_with(g, &cfg, &mut ws).unwrap();
                let want = solver.solve(g, &cfg).unwrap();
                prop_assert_eq!(got.value, want.value, "graph {} solver {}", i, solver.name());
                prop_assert_eq!(&got.side, &want.side, "graph {} solver {}", i, solver.name());
            }
        }
    }
}
