//! Differential tests of the incremental dynamic solve path
//! (`pmc_core::SolveState`): seeded mutation traces are replayed op by
//! op, and after **every prefix** the incrementally maintained answer is
//! checked against an exact from-scratch solve of the mutated graph —
//! at service-style thread widths 1, 2, and 8, whose resolved answers
//! must additionally be bit-identical to each other.

use parallel_mincut::baseline::stoer_wagner;
use parallel_mincut::core_alg::{
    apply_delta, MutationOp, ResolveMode, SolveState, SolverWorkspace, DEFAULT_STALENESS,
};
use parallel_mincut::graph::{gen, Graph};

const THREADS: [usize; 3] = [1, 2, 8];

/// SplitMix64, so traces are reproducible without a rand crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded mixed trace against `g`: reweights of arbitrary edges,
/// chord additions, and removals of previously added chords. Removals
/// only target trace-added vertex pairs at ring distance >= 2, so a
/// cycle-backboned base stays connected throughout.
fn mixed_trace(g: &Graph, seed: u64, len: usize) -> Vec<MutationOp> {
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let n = g.n() as u64;
    let mut g = g.clone();
    let mut added: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let op = match splitmix(&mut rng) % 4 {
            1 => {
                let u = (splitmix(&mut rng) % n) as u32;
                let gap = 2 + splitmix(&mut rng) % (n - 3);
                let v = ((u64::from(u) + gap) % n) as u32;
                added.push((u, v));
                MutationOp::Add {
                    u,
                    v,
                    w: 1 + splitmix(&mut rng) % 8,
                }
            }
            2 if !added.is_empty() => {
                let k = (splitmix(&mut rng) as usize) % added.len();
                let (u, v) = added.swap_remove(k);
                MutationOp::Remove {
                    eid: g.find_edge(u, v).expect("added pair has an edge"),
                }
            }
            _ => MutationOp::Reweight {
                eid: (splitmix(&mut rng) % g.m() as u64) as u32,
                w: 1 + splitmix(&mut rng) % 9,
            },
        };
        apply_one(&mut g, &op);
        ops.push(op);
    }
    ops
}

/// Applies one op to a bare graph (the from-scratch reference path).
fn apply_one(g: &mut Graph, op: &MutationOp) {
    match *op {
        MutationOp::Reweight { eid, w } => {
            g.reweight_edge(eid as usize, w).expect("valid reweight");
        }
        MutationOp::Add { u, v, w } => {
            g.add_edge(u, v, w).expect("valid add");
        }
        MutationOp::Remove { eid } => {
            g.remove_edge(eid as usize).expect("valid remove");
        }
    }
}

/// Replays `ops` over `base` at every thread width, asserting after each
/// prefix that (a) the incremental answer's value equals an exact
/// from-scratch Stoer–Wagner solve of the mutated graph, (b) the witness
/// side really cuts the graph at that value, and (c) the full resolved
/// answer (value, witness, mode) is identical across thread widths.
fn assert_trace_matches_from_scratch(base: &Graph, seed: u64, ops: &[MutationOp]) {
    let mut per_width: Vec<Vec<(u64, Vec<bool>, String)>> = Vec::new();
    for threads in THREADS {
        let mut g = base.clone();
        let mut ws = SolverWorkspace::new();
        let mut state = SolveState::fresh(&g, seed, DEFAULT_STALENESS, &mut ws, Some(threads))
            .expect("base solves");
        let mut answers = Vec::with_capacity(ops.len());
        for (k, op) in ops.iter().enumerate() {
            apply_delta(&mut g, &mut state, op).expect("trace op applies");
            let mode = state
                .resolve(&g, &mut ws, Some(threads))
                .expect("prefix resolves");
            let best = state.best();
            // (b) the witness is real: a proper cut of exactly this value
            // (0-cuts of disconnected graphs use an empty-crossing side).
            assert_eq!(
                g.cut_value(&best.side),
                best.value,
                "prefix {k}: witness value drifts (threads {threads})"
            );
            if best.value > 0 {
                assert!(
                    g.is_proper_cut(&best.side),
                    "prefix {k}: witness is not a proper cut (threads {threads})"
                );
            }
            // (a) exact value parity with a from-scratch solve.
            match stoer_wagner(&g) {
                Ok(cut) => assert_eq!(
                    best.value, cut.value,
                    "prefix {k}: incremental {} != from-scratch {} (threads {threads})",
                    best.value, cut.value
                ),
                Err(e) => panic!("prefix {k}: oracle failed: {e}"),
            }
            answers.push((best.value, best.side.clone(), format!("{mode:?}")));
        }
        per_width.push(answers);
    }
    // (c) bit-identical across thread widths, prefix by prefix.
    for w in 1..per_width.len() {
        assert_eq!(
            per_width[0], per_width[w],
            "threads {} diverged from threads 1",
            THREADS[w]
        );
    }
}

#[test]
fn seeded_mixed_traces_match_from_scratch_at_every_prefix() {
    for (base, seed, len) in [
        (gen::cycle_with_chords(24, 8, 11), 0xA1u64, 24),
        (gen::gnm_connected(32, 96, 8, 12), 0xB2, 20),
        (gen::community_ring(4, 8, 6, 13).0, 0xC3, 24),
    ] {
        let ops = mixed_trace(&base, seed, len);
        assert_trace_matches_from_scratch(&base, seed, &ops);
    }
}

#[test]
fn remove_then_readd_round_trips() {
    // Remove an edge and re-add the same endpoints/weight: every prefix
    // must agree with from-scratch, and the final graph must solve to the
    // same value as the untouched base.
    let base = gen::cycle_with_chords(20, 6, 7);
    let probe = base.edges()[3];
    let ops = [
        MutationOp::Remove { eid: 3 },
        MutationOp::Add {
            u: probe.u,
            v: probe.v,
            w: probe.w,
        },
        MutationOp::Reweight { eid: 0, w: 5 },
        MutationOp::Reweight {
            eid: 0,
            w: base.edges()[0].w,
        },
    ];
    assert_trace_matches_from_scratch(&base, 0xD4, &ops);
    // After the full round trip the content is the base again (edge ids
    // permuted), so the value must equal the base's.
    let mut g = base.clone();
    let mut ws = SolverWorkspace::new();
    let mut state =
        SolveState::fresh(&g, 0xD4, DEFAULT_STALENESS, &mut ws, Some(1)).expect("base solves");
    let want = state.best().value;
    for op in &ops {
        apply_delta(&mut g, &mut state, op).expect("applies");
    }
    state.resolve(&g, &mut ws, Some(1)).expect("resolves");
    assert_eq!(state.best().value, want);
}

#[test]
fn disconnecting_deletions_hit_zero_and_recover() {
    // Two 4-cliques joined by one bridge: deleting the bridge must drop
    // the incremental answer to a 0-cut (a bridge lives in every spanning
    // tree, so this exercises the forced re-pack path), and re-adding a
    // lighter bridge must re-solve to the new bridge weight.
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j, 5));
            }
        }
    }
    edges.push((0, 4, 9)); // the bridge, edge id 12
    let base = Graph::from_edges(8, &edges).unwrap();
    for threads in THREADS {
        let mut g = base.clone();
        let mut ws = SolverWorkspace::new();
        let mut state = SolveState::fresh(&g, 0xE5, DEFAULT_STALENESS, &mut ws, Some(threads))
            .expect("base solves");
        assert_eq!(state.best().value, 9, "bridge is the min cut");
        apply_delta(&mut g, &mut state, &MutationOp::Remove { eid: 12 }).expect("bridge removes");
        let mode = state.resolve(&g, &mut ws, Some(threads)).expect("resolves");
        assert_eq!(mode, ResolveMode::Repack, "a bridge forces a re-pack");
        assert_eq!(state.best().value, 0, "disconnected graphs have 0-cuts");
        assert_eq!(g.cut_value(&state.best().side), 0);
        apply_delta(&mut g, &mut state, &MutationOp::Add { u: 3, v: 6, w: 2 }).expect("re-bridges");
        state.resolve(&g, &mut ws, Some(threads)).expect("resolves");
        assert_eq!(state.best().value, 2, "the new bridge is the min cut");
        assert_eq!(
            stoer_wagner(&g).unwrap().value,
            2,
            "from-scratch agrees after reconnection"
        );
    }
}

#[test]
fn resolve_is_idempotent_between_mutations() {
    // Resolving twice in a row (or resolving with nothing stale) must
    // neither change the answer nor re-sweep anything.
    let base = gen::cycle_with_chords(18, 5, 3);
    let mut g = base.clone();
    let mut ws = SolverWorkspace::new();
    let mut state =
        SolveState::fresh(&g, 1, DEFAULT_STALENESS, &mut ws, Some(2)).expect("base solves");
    let before = (state.best().value, state.best().side.clone());
    let mode = state.resolve(&g, &mut ws, Some(2)).expect("no-op resolve");
    assert_eq!(mode, ResolveMode::Incremental { reswept: 0 });
    assert_eq!((state.best().value, state.best().side.clone()), before);
    apply_delta(&mut g, &mut state, &MutationOp::Reweight { eid: 2, w: 9 }).expect("applies");
    state.resolve(&g, &mut ws, Some(2)).expect("resolves");
    let after = (state.best().value, state.best().side.clone());
    let mode = state.resolve(&g, &mut ws, Some(2)).expect("no-op resolve");
    assert_eq!(mode, ResolveMode::Incremental { reswept: 0 });
    assert_eq!((state.best().value, state.best().side.clone()), after);
}
