//! Exit-code contracts of the `pmc` binary: automation (CI jobs, shell
//! pipelines) keys off the process status, so failure paths must
//! actually reach a nonzero exit — a suite disagreement (exercised
//! through the hidden fault-injection scenario filter), unreadable and
//! malformed `mincut` inputs, bad flags — while the corresponding
//! success paths stay zero.

use std::process::Command;

fn pmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmc"))
}

#[test]
fn suite_exits_nonzero_on_injected_disagreement() {
    // `__bad-oracle` reaches the test-only scenario whose Known oracle is
    // wrong on purpose; every solver disagrees with it.
    let out = pmc()
        .args(["suite", "--filter", "__bad-oracle", "--seeds", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "suite must fail on a disagreement");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("DISAGREE"), "{err}");
    assert!(err.contains("__bad-oracle/cycle8"), "{err}");
    assert!(err.contains("disagreeing cells"), "{err}");
}

#[test]
fn suite_json_mode_also_fails_on_injected_disagreement() {
    let out = pmc()
        .args([
            "suite",
            "--filter",
            "__bad-oracle",
            "--seeds",
            "1",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    // The report itself is still emitted, with the bad cells itemized.
    assert!(json.contains("\"disagreement_count\": 5"), "{json}");
    assert!(json.contains("\"disagreeing_cells\""), "{json}");
}

#[test]
fn suite_smoke_slice_exits_zero() {
    let out = pmc()
        .args(["suite", "--filter", "torus", "--seeds", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn mincut_exits_nonzero_on_unreadable_input() {
    let out = pmc()
        .args(["mincut", "/no/such/dir/absent.dimacs"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("absent.dimacs"), "{err}");
}

#[test]
fn mincut_exits_nonzero_on_malformed_input() {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let cases: [(&str, &str); 3] = [
        ("malformed_header.dimacs", "p cut 0 0\n"),
        ("malformed_edge.dimacs", "p cut 3 1\ne 1 nine 1\n"),
        ("malformed_list.txt", "0 1 1\n0 one 2\n"),
    ];
    for (name, content) in cases {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        let out = pmc()
            .args(["mincut", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{name} must be rejected");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("line"), "{name}: {err}");
    }
    // A malformed file anywhere in a batch fails the whole invocation.
    let good = dir.join("exitcode_good.dimacs");
    std::fs::write(&good, "p cut 2 1\ne 1 2 4\n").unwrap();
    let bad = dir.join("malformed_header.dimacs");
    let out = pmc()
        .args(["mincut", good.to_str().unwrap(), bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_flags_and_commands_exit_nonzero() {
    for args in [
        &["mincut", "-", "--frobnicate"][..],
        &["suite", "--no-such-flag", "x"][..],
        &["serve", "positional-arg"][..],
        &["definitely-not-a-command"][..],
    ] {
        let out = pmc().args(args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(!out.stderr.is_empty(), "{args:?} must explain itself");
    }
}

#[test]
fn verify_mismatch_exits_nonzero() {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exitcode_verify.dimacs");
    std::fs::write(&path, "p cut 2 1\ne 1 2 4\n").unwrap();
    let ok = pmc()
        .args(["verify", path.to_str().unwrap(), "4"])
        .output()
        .unwrap();
    assert!(ok.status.success(), "{ok:?}");
    let bad = pmc()
        .args(["verify", path.to_str().unwrap(), "5"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8(bad.stderr).unwrap().contains("MISMATCH"));
}
