//! Cross-crate integration: the full Theorem 10 pipeline against exact
//! oracles, over several graph families.

use parallel_mincut::baseline::{brute_force_min_cut, karger_stein, stoer_wagner};
use parallel_mincut::core_alg::{minimum_cut, MinCutConfig, RespectKind};
use parallel_mincut::graph::gen;
use parallel_mincut::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn assert_exact(g: &Graph, seed: u64) -> u64 {
    let want = stoer_wagner(g).unwrap().value;
    let cfg = MinCutConfig {
        seed,
        ..MinCutConfig::default()
    };
    let got = minimum_cut(g, &cfg).unwrap();
    assert_eq!(got.value, want, "value mismatch");
    assert!(g.is_proper_cut(&got.side));
    assert_eq!(g.cut_value(&got.side), got.value, "witness mismatch");
    want
}

#[test]
fn random_sparse_graphs() {
    let mut rng = SmallRng::seed_from_u64(1);
    for trial in 0..30 {
        let n = rng.gen_range(3..80);
        let m = rng.gen_range(n - 1..3 * n);
        let g = gen::gnm_connected(n, m, 10, trial);
        assert_exact(&g, trial);
    }
}

#[test]
fn random_dense_graphs() {
    let mut rng = SmallRng::seed_from_u64(2);
    for trial in 0..10 {
        let n = rng.gen_range(8..40);
        let g = gen::complete(n, 6, trial);
        assert_exact(&g, trial);
    }
}

#[test]
fn planted_bisections_at_scale() {
    for seed in 0..5 {
        let (g, value, side) = gen::planted_bisection(60, 80, 40, 4, 60, seed);
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(cut.value, value);
        let same = cut.side == side;
        let comp = cut.side.iter().zip(&side).all(|(a, b)| a != b);
        assert!(same || comp, "recovered wrong partition");
    }
}

#[test]
fn grids_and_cycles() {
    assert_exact(&gen::grid(8, 8), 3);
    assert_exact(&gen::grid(2, 30), 4);
    let g = gen::cycle_with_chords(100, 10, 5);
    assert_exact(&g, 6);
}

#[test]
fn barbells() {
    for k in [3usize, 5, 9] {
        let g = gen::barbell(k);
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(cut.value, 1);
    }
}

#[test]
fn heavy_weights() {
    // Weights near the supported bound exercise the INF headroom math.
    let w = 1 << 30;
    let g = Graph::from_edges(
        6,
        &[
            (0, 1, w),
            (1, 2, w),
            (2, 0, w),
            (3, 4, w),
            (4, 5, w),
            (5, 3, w),
            (0, 3, 7),
        ],
    )
    .unwrap();
    let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
    assert_eq!(cut.value, 7);
    assert_eq!(g.cut_value(&cut.side), 7);
}

#[test]
fn parallel_edge_multigraphs() {
    let mut rng = SmallRng::seed_from_u64(3);
    for trial in 0..10 {
        let n = rng.gen_range(3..20);
        // Heavy duplication of a few vertex pairs.
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 1..n {
            edges.push((rng.gen_range(0..v) as u32, v as u32, rng.gen_range(1..5)));
        }
        for _ in 0..3 * n {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                let w = rng.gen_range(1..4);
                edges.push((u, v, w));
                edges.push((u, v, w)); // exact duplicate
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        assert_exact(&g, trial);
    }
}

#[test]
fn determinism_given_seed() {
    let g = gen::gnm_connected(60, 180, 9, 44);
    let cfg = MinCutConfig::default();
    let a = minimum_cut(&g, &cfg).unwrap();
    let b = minimum_cut(&g, &cfg).unwrap();
    assert_eq!(a.value, b.value);
    assert_eq!(a.side, b.side);
    assert_eq!(a.tree_index, b.tree_index);
}

#[test]
fn agreement_with_karger_stein() {
    for seed in 0..5 {
        let g = gen::gnm_connected(30, 90, 7, 700 + seed);
        let ks = karger_stein(&g, 30, seed).unwrap().value;
        let ours = minimum_cut(
            &g,
            &MinCutConfig {
                seed,
                ..MinCutConfig::default()
            },
        )
        .unwrap()
        .value;
        assert_eq!(ours, ks);
    }
}

#[test]
fn tiny_graphs_against_brute_force() {
    let mut rng = SmallRng::seed_from_u64(4);
    for trial in 0..25 {
        let n = rng.gen_range(2..9);
        let m = rng.gen_range(n - 1..2 * n + 3);
        let g = gen::gnm_connected(n, m, 6, 900 + trial);
        let want = brute_force_min_cut(&g).unwrap().value;
        let got = minimum_cut(
            &g,
            &MinCutConfig {
                seed: trial,
                ..MinCutConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.value, want, "trial {trial}");
    }
}

#[test]
fn respect_kind_is_reported() {
    // A cut that must cross two tree edges for most spanning trees: the
    // cycle. Just sanity-check that the field is populated consistently.
    let g = gen::cycle_with_chords(32, 0, 0);
    let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
    assert_eq!(cut.value, 2);
    match cut.kind {
        Some(RespectKind::One | RespectKind::TwoIncomparable | RespectKind::TwoAncestor) => {}
        None => panic!("paper solver must report a respect kind"),
    }
    assert_eq!(cut.algorithm, "paper");
    assert!(cut.tree_index.is_some());
}
