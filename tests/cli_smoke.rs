//! End-to-end CLI smoke test for the solver dispatch layer: `pmc gen` →
//! `pmc mincut --algo <each>` → `pmc verify`, all through the installed
//! binary (`CARGO_BIN_EXE_pmc`).

use std::process::Command;

fn pmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmc"))
}

fn stdout_of(out: std::process::Output) -> String {
    assert!(
        out.status.success(),
        "command failed: stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn cut_value(text: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix("value: "))
        .expect("value line")
        .parse()
        .unwrap()
}

#[test]
fn gen_mincut_verify_through_every_algo() {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("cli_smoke.dimacs");
    let file_s = file.to_str().unwrap();

    // Small enough for `brute`, structured enough to be non-trivial.
    let out = pmc()
        .args([
            "gen", "planted", "9", "10", "20", "2", "5", "4", "--out", file_s,
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let mut values = Vec::new();
    for algo in ["paper", "sw", "contract", "quadratic", "brute"] {
        let text = stdout_of(
            pmc()
                .args(["mincut", file_s, "--algo", algo, "--seed", "11"])
                .output()
                .unwrap(),
        );
        assert!(
            text.contains(&format!("algorithm: {algo}")),
            "missing algorithm line for {algo}: {text}"
        );
        values.push((algo, cut_value(&text)));
    }
    let (_, reference) = values[0];
    for &(algo, v) in &values {
        assert_eq!(v, reference, "algorithm {algo} disagrees: {values:?}");
    }

    // verify recomputes with the exact oracle by default...
    let out = pmc()
        .args(["verify", file_s, &reference.to_string()])
        .output()
        .unwrap();
    assert!(out.status.success(), "verify rejected {reference}: {out:?}");
    // ...and accepts --algo for cross-checks through the same registry.
    let out = pmc()
        .args(["verify", file_s, &reference.to_string(), "--algo", "paper"])
        .output()
        .unwrap();
    assert!(out.status.success(), "verify --algo paper failed: {out:?}");
}

#[test]
fn unknown_algo_is_rejected_with_clear_message() {
    let out = pmc()
        .args(["mincut", "-", "--algo", "nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown algorithm"), "{err}");
    assert!(err.contains("nope"), "{err}");
    // The error is self-describing: every registry name and alias listed.
    for name in [
        "paper",
        "gg",
        "ours",
        "sw",
        "stoer-wagner",
        "contract",
        "karger-stein",
        "ks",
        "quadratic",
        "karger-parallel",
        "brute",
    ] {
        assert!(err.contains(name), "missing {name} in: {err}");
    }
}

#[test]
fn mincut_batches_multiple_files_through_one_workspace() {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let mut files = Vec::new();
    for (i, (n, m)) in [(12u32, 30u32), (16, 40), (20, 50)].iter().enumerate() {
        let f = dir.join(format!("cli_batch_{i}.dimacs"));
        let fs = f.to_str().unwrap().to_string();
        let out = pmc()
            .args([
                "gen",
                "gnm",
                &n.to_string(),
                &m.to_string(),
                "6",
                &(i as u32 + 1).to_string(),
                "--out",
                &fs,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "gen failed: {out:?}");
        files.push(fs);
    }
    // Batch solve of all three files…
    let mut cmd = pmc();
    cmd.arg("mincut").args(&files).args(["--algo", "sw"]);
    let text = stdout_of(cmd.output().unwrap());
    assert_eq!(text.matches("file: ").count(), 3, "{text}");
    assert!(text.contains("batch: 3 graphs"), "{text}");
    let batch_values: Vec<u64> = text
        .lines()
        .filter_map(|l| l.strip_prefix("value: "))
        .map(|v| v.parse().unwrap())
        .collect();
    assert_eq!(batch_values.len(), 3);
    // …must agree with solving each file on its own.
    for (f, want) in files.iter().zip(&batch_values) {
        let one = stdout_of(pmc().args(["mincut", f, "--algo", "sw"]).output().unwrap());
        assert_eq!(cut_value(&one), *want, "{f}");
    }
}

#[test]
fn algos_lists_the_registry() {
    let text = stdout_of(pmc().args(["algos"]).output().unwrap());
    for name in ["paper", "sw", "contract", "quadratic", "brute"] {
        assert!(text.contains(name), "missing {name} in: {text}");
    }
}

#[test]
fn threads_flag_is_honored() {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("cli_smoke_threads.dimacs");
    let file_s = file.to_str().unwrap();
    let out = pmc()
        .args(["gen", "gnm", "40", "120", "8", "2", "--out", file_s])
        .output()
        .unwrap();
    assert!(out.status.success());
    let a = cut_value(&stdout_of(
        pmc()
            .args(["mincut", file_s, "--threads", "2"])
            .output()
            .unwrap(),
    ));
    let b = cut_value(&stdout_of(pmc().args(["mincut", file_s]).output().unwrap()));
    assert_eq!(a, b);
}
