//! Differential tests over the scenario corpus: every registered solver
//! agrees with the Stoer–Wagner oracle on a slice of the full corpus,
//! both solve-by-solve and through `solve_batch` over mixed-family
//! batches, and the suite runner itself is deterministic across thread
//! counts.

use parallel_mincut::baseline::stoer_wagner;
use parallel_mincut::scenario::{corpus, corpus_filtered, run_suite, Oracle, SuiteConfig};
use parallel_mincut::{solvers, solvers_for, Graph, SolverConfig};

/// The per-scenario slice the integration tests sweep: first seed of every
/// scenario whose smoke point exists (fast; the full grid is `pmc suite`'s
/// job).
fn smoke_instances() -> Vec<(&'static str, Graph, u64)> {
    corpus_filtered(Some("smoke"))
        .iter()
        .map(|s| {
            let inst = s.instantiate(0);
            let expected = match inst.oracle {
                Oracle::Known(v) => v,
                Oracle::Baseline => stoer_wagner(&inst.graph).unwrap().value,
            };
            (s.name(), inst.graph, expected)
        })
        .collect()
}

#[test]
fn every_solver_agrees_on_the_smoke_corpus() {
    let cases = smoke_instances();
    assert!(
        cases.len() >= 10,
        "corpus shrank: {} smoke points",
        cases.len()
    );
    for (name, g, expected) in &cases {
        for solver in solvers_for(g) {
            let cfg = SolverConfig::with_seed(0xA11CE);
            let got = solver.solve(g, &cfg).unwrap();
            assert_eq!(
                got.value,
                *expected,
                "scenario {name}, solver {}",
                solver.name()
            );
            assert!(g.is_proper_cut(&got.side), "{name}/{}", solver.name());
            assert_eq!(
                g.cut_value(&got.side),
                got.value,
                "{name}/{}",
                solver.name()
            );
        }
    }
}

#[test]
fn solve_batch_over_mixed_family_batches() {
    // One heterogeneous batch spanning every smoke family, solved through
    // the amortized seam — the workspace must tolerate family switches
    // (dense complete graph next to a sparse bridge graph next to a
    // contracted multigraph) without leaking state.
    let cases = smoke_instances();
    let graphs: Vec<Graph> = cases.iter().map(|(_, g, _)| g.clone()).collect();
    let expected: Vec<u64> = cases.iter().map(|(_, _, v)| *v).collect();
    let cfg = SolverConfig::with_seed(7);
    for solver in solvers() {
        if !graphs.iter().all(|g| solver.supports(g)) {
            continue;
        }
        let batch = solver.solve_batch(&graphs, &cfg).unwrap();
        assert_eq!(batch.len(), graphs.len());
        for (i, (r, want)) in batch.iter().zip(&expected).enumerate() {
            assert_eq!(
                r.value,
                *want,
                "solver {}, batch index {i} ({})",
                solver.name(),
                cases[i].0
            );
        }
    }
}

#[test]
fn corpus_meets_the_acceptance_floor() {
    // >= 10 families, each scenario instantiable at >= 3 seeds with a
    // resolvable oracle.
    let all = corpus();
    let families: std::collections::BTreeSet<_> = all.iter().map(|s| s.family()).collect();
    assert!(families.len() >= 10, "only {} families", families.len());
    for s in &all {
        for seed in 0..3 {
            let inst = s.instantiate(seed);
            assert!(inst.graph.n() >= 2, "{} seed {seed}", s.name());
        }
    }
}

#[test]
fn suite_runner_scales_and_stays_deterministic() {
    let cfg = |threads: usize| SuiteConfig {
        filter: Some("smoke".into()),
        threads,
        seeds: 2,
        ..SuiteConfig::default()
    };
    let a = run_suite(&cfg(1));
    let b = run_suite(&cfg(3));
    assert!(a.all_agree(), "{:?}", a.disagreements());
    assert_eq!(a.threads, 1);
    assert_eq!(b.threads, 3);
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(
            (x.scenario, x.solver, x.seed, x.expected, x.observed),
            (y.scenario, y.solver, y.seed, y.expected, y.observed)
        );
    }
}
