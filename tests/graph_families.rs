//! End-to-end agreement with the exact oracle on the structured graph
//! families (hypercubes, tori, wheels, community rings, and the
//! adversarial corpus additions) plus structural property tests for every
//! generator: node/edge counts, connectivity, degree invariants, and the
//! exact minimum-cut values derivable from each construction.

use parallel_mincut::baseline::stoer_wagner;
use parallel_mincut::core_alg::{minimum_cut, minimum_cut_report, MinCutConfig};
use parallel_mincut::graph::{gen, is_connected};

#[test]
fn hypercubes_have_cut_d() {
    for d in 2..7u32 {
        let g = gen::hypercube(d);
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(cut.value, d as u64, "Q_{d}");
        assert_eq!(g.cut_value(&cut.side), cut.value);
    }
}

#[test]
fn tori_have_cut_four() {
    for (r, c) in [(3usize, 3usize), (4, 6), (5, 5), (3, 10)] {
        let g = gen::torus(r, c);
        let want = stoer_wagner(&g).unwrap().value;
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want, "torus {r}x{c}");
        assert_eq!(want, 4);
    }
}

#[test]
fn wheels_have_cut_three() {
    for n in [4usize, 7, 12, 25] {
        let g = gen::wheel(n);
        let want = stoer_wagner(&g).unwrap().value;
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want, "wheel {n}");
    }
}

#[test]
fn community_rings_cut_two_bridges() {
    for seed in 0..5 {
        let (g, label) = gen::community_ring(4, 10, 5, seed);
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(cut.value, 2, "seed {seed}");
        // The witness splits the community ring into contiguous arcs:
        // check it doesn't split any single community.
        for c in 0..4u32 {
            let sides: std::collections::HashSet<bool> = label
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == c)
                .map(|(v, _)| cut.side[v])
                .collect();
            assert_eq!(sides.len(), 1, "community {c} split (seed {seed})");
        }
    }
}

#[test]
fn recursive_induced_partitioning() {
    // The clustering pattern: cut, recurse on induced halves; at every
    // level the library must agree with the oracle on the subgraphs.
    let (g, _) = gen::community_ring(4, 8, 6, 9);
    let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
    let (a, b) = cut.partition();
    for part in [a, b] {
        if part.len() < 2 {
            continue;
        }
        let sub = g.induced(&part);
        if !parallel_mincut::graph::is_connected(&sub) {
            continue;
        }
        let want = stoer_wagner(&sub).unwrap().value;
        let got = minimum_cut(&sub, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want);
    }
}

// ---------------------------------------------------------------------------
// Structural property tests: every generator's counts, connectivity, and
// degree invariants, plus exact minimum cuts where the construction proves
// them (hypercube d, torus 4, wheel 3, barbell 1, community-ring bridges,
// bridge-graph bridge weight, grid corner isolation, cycle 2).
// ---------------------------------------------------------------------------

#[test]
fn generator_counts_and_connectivity() {
    for seed in 0..3u64 {
        let g = gen::gnm_connected(40, 110, 9, seed);
        assert_eq!((g.n(), g.m()), (40, 110));
        assert!(is_connected(&g));

        let g = gen::gnm_heavy_tailed(40, 110, seed);
        assert_eq!((g.n(), g.m()), (40, 110));
        assert!(is_connected(&g));
        assert!(g
            .edges()
            .iter()
            .all(|e| e.w.is_power_of_two() && e.w <= 1024));

        let g = gen::cycle_with_chords(25, 5, seed);
        assert_eq!(g.n(), 25);
        assert!(g.m() <= 30 && g.m() >= 25); // chords skip u == v draws
        assert!(is_connected(&g));

        let g = gen::preferential_attachment(40, 3, seed);
        assert_eq!(g.n(), 40);
        assert_eq!(g.m(), 6 + 3 * 36);
        assert!(is_connected(&g));
    }

    let g = gen::grid(5, 7);
    assert_eq!((g.n(), g.m()), (35, 5 * 6 + 4 * 7));
    assert!(is_connected(&g));

    let g = gen::complete(10, 5, 3);
    assert_eq!((g.n(), g.m()), (10, 45));
    assert!(is_connected(&g));

    let g = gen::barbell(6);
    assert_eq!((g.n(), g.m()), (12, 2 * 15 + 1));

    let g = gen::hypercube(5);
    assert_eq!((g.n(), g.m()), (32, 5 * 16));

    let g = gen::torus(4, 6);
    assert_eq!((g.n(), g.m()), (24, 48));

    let g = gen::wheel(9);
    assert_eq!((g.n(), g.m()), (9, 16));

    let (g, label) = gen::community_ring(5, 6, 3, 1);
    assert_eq!(g.n(), 30);
    assert!(is_connected(&g));
    assert_eq!(label.len(), 30);
}

#[test]
fn regular_generator_degree_invariant() {
    for (n, d, seed) in [(26, 3, 0u64), (30, 5, 1), (40, 4, 2)] {
        let g = gen::random_regular(n, d, seed);
        assert_eq!(g.m(), n * d / 2, "n={n} d={d}");
        for v in 0..n as u32 {
            assert_eq!(g.weighted_degree(v), d as u64, "n={n} d={d} v={v}");
        }
        assert!(is_connected(&g));
    }
}

#[test]
fn torus_and_wheel_degree_invariants() {
    let g = gen::torus(5, 6);
    for v in 0..30u32 {
        assert_eq!(g.weighted_degree(v), 4);
    }
    let g = gen::wheel(10);
    assert_eq!(g.weighted_degree(0), 9); // hub: one spoke per rim vertex
    for v in 1..10u32 {
        assert_eq!(g.weighted_degree(v), 3); // rim: two rim edges + spoke
    }
}

#[test]
fn barbell_min_cut_is_one() {
    for k in [3usize, 5, 9] {
        let g = gen::barbell(k);
        let want = stoer_wagner(&g).unwrap().value;
        assert_eq!(want, 1, "barbell({k})");
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, 1, "barbell({k})");
    }
}

#[test]
fn grid_min_cut_is_corner_isolation() {
    for (r, c) in [(2usize, 2usize), (3, 5), (6, 4)] {
        let g = gen::grid(r, c);
        assert_eq!(stoer_wagner(&g).unwrap().value, 2, "grid {r}x{c}");
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, 2, "grid {r}x{c}");
    }
}

#[test]
fn plain_cycle_min_cut_is_two() {
    for n in [5usize, 12, 31] {
        let g = gen::cycle_with_chords(n, 0, 1);
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, 2, "cycle({n})");
    }
}

#[test]
fn bridge_graphs_cut_the_bridge() {
    for (side, w, seed) in [(5usize, 1u64, 0u64), (10, 3, 1), (20, 7, 2)] {
        let (g, value) = gen::bridge_graph(side, side, w, seed);
        assert_eq!(value, w);
        assert_eq!(stoer_wagner(&g).unwrap().value, w, "bridge side={side}");
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, w, "bridge side={side}");
    }
}

#[test]
fn adversarial_families_agree_with_oracle() {
    // No closed-form cut for these: differential check against the exact
    // baseline, paper solver on one side.
    let cases: Vec<parallel_mincut::Graph> = vec![
        gen::random_regular(36, 4, 3),
        gen::preferential_attachment(40, 3, 4),
        gen::gnm_heavy_tailed(40, 120, 5),
        gen::contracted_multigraph(60, 150, 18, 6),
    ];
    for (i, g) in cases.iter().enumerate() {
        let want = stoer_wagner(g).unwrap().value;
        let got = minimum_cut(g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want, "case {i}");
        assert_eq!(g.cut_value(&got.side), got.value, "case {i}");
    }
}

#[test]
fn report_reflects_certificate_on_dense_family() {
    // A dense torus-of-communities style graph with a weak vertex: the
    // report must show the certificate firing and all stages populated.
    let dense = gen::complete(80, 4, 5);
    let mut edges: Vec<(u32, u32, u64)> = dense.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    edges.push((0, 80, 2));
    let g = parallel_mincut::Graph::from_edges(81, &edges).unwrap();
    let (cut, report) = minimum_cut_report(&g, &MinCutConfig::default()).unwrap();
    assert_eq!(cut.value, 2);
    assert!(report.certificate_applied);
    assert!(report.certificate_kept < 0.2);
    assert!(report.trees_examined > 0);
    assert!(report.batch_ops_total > 0);
}
