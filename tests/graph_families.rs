//! End-to-end agreement with the exact oracle on the structured graph
//! families (hypercubes, tori, wheels, community rings) plus the
//! induced-subgraph recursion pattern the clustering application uses.

use parallel_mincut::baseline::stoer_wagner;
use parallel_mincut::core_alg::{minimum_cut, minimum_cut_report, MinCutConfig};
use parallel_mincut::graph::gen;

#[test]
fn hypercubes_have_cut_d() {
    for d in 2..7u32 {
        let g = gen::hypercube(d);
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(cut.value, d as u64, "Q_{d}");
        assert_eq!(g.cut_value(&cut.side), cut.value);
    }
}

#[test]
fn tori_have_cut_four() {
    for (r, c) in [(3usize, 3usize), (4, 6), (5, 5), (3, 10)] {
        let g = gen::torus(r, c);
        let want = stoer_wagner(&g).unwrap().value;
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want, "torus {r}x{c}");
        assert_eq!(want, 4);
    }
}

#[test]
fn wheels_have_cut_three() {
    for n in [4usize, 7, 12, 25] {
        let g = gen::wheel(n);
        let want = stoer_wagner(&g).unwrap().value;
        let got = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want, "wheel {n}");
    }
}

#[test]
fn community_rings_cut_two_bridges() {
    for seed in 0..5 {
        let (g, label) = gen::community_ring(4, 10, 5, seed);
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(cut.value, 2, "seed {seed}");
        // The witness splits the community ring into contiguous arcs:
        // check it doesn't split any single community.
        for c in 0..4u32 {
            let sides: std::collections::HashSet<bool> = label
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == c)
                .map(|(v, _)| cut.side[v])
                .collect();
            assert_eq!(sides.len(), 1, "community {c} split (seed {seed})");
        }
    }
}

#[test]
fn recursive_induced_partitioning() {
    // The clustering pattern: cut, recurse on induced halves; at every
    // level the library must agree with the oracle on the subgraphs.
    let (g, _) = gen::community_ring(4, 8, 6, 9);
    let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
    let (a, b) = cut.partition();
    for part in [a, b] {
        if part.len() < 2 {
            continue;
        }
        let sub = g.induced(&part);
        if !parallel_mincut::graph::is_connected(&sub) {
            continue;
        }
        let want = stoer_wagner(&sub).unwrap().value;
        let got = minimum_cut(&sub, &MinCutConfig::default()).unwrap();
        assert_eq!(got.value, want);
    }
}

#[test]
fn report_reflects_certificate_on_dense_family() {
    // A dense torus-of-communities style graph with a weak vertex: the
    // report must show the certificate firing and all stages populated.
    let dense = gen::complete(80, 4, 5);
    let mut edges: Vec<(u32, u32, u64)> = dense.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    edges.push((0, 80, 2));
    let g = parallel_mincut::Graph::from_edges(81, &edges).unwrap();
    let (cut, report) = minimum_cut_report(&g, &MinCutConfig::default()).unwrap();
    assert_eq!(cut.value, 2);
    assert!(report.certificate_applied);
    assert!(report.certificate_kept < 0.2);
    assert!(report.trees_examined > 0);
    assert!(report.batch_ops_total > 0);
}
