//! Property-based tests of the full algorithm and its key substrates
//! against exact oracles on randomly generated graphs.

use parallel_mincut::baseline::{quadratic_two_respect, stoer_wagner};
use parallel_mincut::core_alg::{minimum_cut, two_respect_mincut, MinCutConfig};
use parallel_mincut::graph::Graph;
use parallel_mincut::packing::{boruvka_mst, kruskal_mst, rooted_tree_from_edges};
use proptest::prelude::*;

/// Arbitrary connected weighted graph: spanning-tree backbone + extras.
fn arb_connected_graph(max_n: usize, extra: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        let backbone: Vec<BoxedStrategy<(u32, u32, u64)>> = (1..n)
            .map(|v| {
                ((0..v as u32), (1u64..10))
                    .prop_map(move |(p, w)| (p, v as u32, w))
                    .boxed()
            })
            .collect();
        let extras = prop::collection::vec(((0..n as u32), (0..n as u32), (1u64..10)), 0..extra);
        (backbone, extras).prop_map(move |(mut edges, extras)| {
            for (u, v, w) in extras {
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minimum_cut_matches_stoer_wagner(g in arb_connected_graph(28, 60), seed in 0u64..1 << 20) {
        let want = stoer_wagner(&g).unwrap().value;
        let cfg = MinCutConfig { seed, ..MinCutConfig::default() };
        let got = minimum_cut(&g, &cfg).unwrap();
        prop_assert_eq!(got.value, want);
        prop_assert!(g.is_proper_cut(&got.side));
        prop_assert_eq!(g.cut_value(&got.side), got.value);
    }

    #[test]
    fn two_respect_engines_agree(g in arb_connected_graph(26, 50), seed in 0u64..1000) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let cost: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(0..100)).collect();
        let mst = boruvka_mst(&g, &cost);
        let tree = rooted_tree_from_edges(&g, &mst, 0);
        let ours = two_respect_mincut(&g, &tree);
        let base = quadratic_two_respect(&g, &tree).unwrap();
        prop_assert_eq!(ours.value as u64, base.value);
        prop_assert_eq!(g.cut_value(&ours.side), ours.value as u64);
        prop_assert_eq!(g.cut_value(&base.side), base.value);
    }

    #[test]
    fn mst_implementations_agree(g in arb_connected_graph(40, 80), seed in 0u64..1000) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let cost: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(0..50)).collect();
        prop_assert_eq!(boruvka_mst(&g, &cost), kruskal_mst(&g, &cost));
    }

    #[test]
    fn min_cut_value_lower_bounds_every_cut(g in arb_connected_graph(20, 40)) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let cut = minimum_cut(&g, &MinCutConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..30 {
            let mut side: Vec<bool> = (0..g.n()).map(|_| rng.gen()).collect();
            if !g.is_proper_cut(&side) {
                side[0] = !side[0];
            }
            if g.is_proper_cut(&side) {
                prop_assert!(g.cut_value(&side) >= cut.value);
            }
        }
    }
}
