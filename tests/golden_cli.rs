//! Golden-file tests for the machine-readable CLI surfaces introduced in
//! PRs 2–5 but never pinned: `pmc suite --quick --json`, the
//! `pmc scenarios` table, and a `pmc serve` stats response. Each output
//! is compared against a snapshot in `tests/golden/` after normalizing
//! the timing fields (`elapsed_ms`, `mean_micros`, `micros`,
//! `uptime_micros`) to `0` — everything else, from field order to cut
//! values, is part of the contract.
//!
//! Regenerate intentionally changed surfaces with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_cli
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn pmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmc"))
}

/// Keys whose numeric values vary run to run and are zeroed before the
/// comparison; the keys themselves must still be present.
const VOLATILE_KEYS: &[&str] = &[
    "elapsed_ms",
    "mean_micros",
    "micros",
    "uptime_micros",
    // `pmc loadgen --json`: wall-clock latency quantiles and the probed
    // core count vary run to run / machine to machine; request counts,
    // error tallies, and histogram footprints do not.
    "hardware_threads",
    "throughput_rps",
    "min_us",
    "mean_us",
    "p50_us",
    "p95_us",
    "p99_us",
    "max_us",
];

/// Replaces the number after every `"key":` occurrence with `0`,
/// leaving everything else byte-for-byte intact.
fn normalize(text: &str) -> String {
    let mut out = text.to_string();
    for key in VOLATILE_KEYS {
        let pat = format!("\"{key}\":");
        let mut from = 0;
        while let Some(i) = out[from..].find(&pat) {
            let start = from + i + pat.len();
            let ws: usize = out[start..].chars().take_while(|c| *c == ' ').count();
            let num_start = start + ws;
            let num_len = out[num_start..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .count();
            assert!(num_len > 0, "no number after {pat} in {text}");
            out.replace_range(num_start..num_start + num_len, "0");
            from = num_start + 1;
        }
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `text` to the named snapshot, or rewrites the snapshot when
/// `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, text: &str) {
    let normalized = normalize(text);
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&path, &normalized).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run UPDATE_GOLDEN=1 cargo test --test golden_cli to create it)",
            path.display()
        )
    });
    if normalized != want {
        // A readable first-divergence report beats a 200-line diff dump.
        let line = normalized
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .map_or(normalized.lines().count().min(want.lines().count()), |i| i);
        panic!(
            "{name} drifted from its golden file at line {line}:\n  got:  {}\n  want: {}\n\
             If the change is intentional: UPDATE_GOLDEN=1 cargo test --test golden_cli",
            normalized.lines().nth(line).unwrap_or("<eof>"),
            want.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

fn stdout_of(mut cmd: Command) -> String {
    let out = cmd.output().expect("run pmc");
    assert!(
        out.status.success(),
        "command failed: stderr={}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn suite_quick_json_matches_golden() {
    // --threads 2 pins the only machine-dependent non-timing field.
    let mut cmd = pmc();
    cmd.args(["suite", "--quick", "--threads", "2", "--json"]);
    assert_golden("suite_quick.json.golden", &stdout_of(cmd));
}

#[test]
fn scenarios_table_matches_golden() {
    let mut cmd = pmc();
    cmd.arg("scenarios");
    assert_golden("scenarios.txt.golden", &stdout_of(cmd));
}

#[test]
fn loadgen_json_summary_matches_golden() {
    // A seeded closed-loop run against a spawned --no-timing child: the
    // request trace is a pure function of (seed, connection), so every
    // non-timing field of the summary — per-verb counts, error tallies,
    // histogram footprints, workload echo — is deterministic. Timing
    // fields (latency quantiles, throughput, hardware_threads) are
    // normalized to 0 by VOLATILE_KEYS.
    let mut cmd = pmc();
    cmd.args([
        "loadgen",
        "--json",
        "--no-timing",
        "--seed",
        "1234",
        "--connections",
        "2",
        "--requests",
        "25",
    ]);
    assert_golden("loadgen_summary.json.golden", &stdout_of(cmd));
}

#[test]
fn serve_stats_response_matches_golden() {
    // A fixed session: load two graphs, solve one, mutate it three times
    // (the first update misses the snapshot cache and solves fresh; the
    // second — addressed to the re-keyed id — hits the snapshot and
    // re-solves incrementally; the third adds an edge, which forces a
    // re-pack), ask for stats. With --no-timing and --threads 2 every
    // byte of the stats response is deterministic; the
    // load/solve/update responses are pinned too (ids are
    // content-addressed, so the re-keyed ids are stable).
    let session = "{\"op\":\"load\",\"body\":\"p cut 4 4\\ne 1 2 1\\ne 2 3 1\\ne 3 4 1\\ne 4 1 1\\n\"}\n\
                   {\"op\":\"load\",\"body\":\"p cut 3 3\\ne 1 2 2\\ne 2 3 2\\ne 3 1 2\\n\"}\n\
                   {\"op\":\"solve\",\"graph\":\"g-030a2ab13a73a411\",\"solver\":\"sw\",\"seed\":5}\n\
                   {\"op\":\"update\",\"graph\":\"g-030a2ab13a73a411\",\"ops\":[{\"kind\":\"reweight_edge\",\"u\":1,\"v\":2,\"w\":3}],\"seed\":5}\n\
                   {\"op\":\"update\",\"graph\":\"g-cc1fc9baedc78a93\",\"ops\":[{\"kind\":\"reweight_edge\",\"u\":2,\"v\":3,\"w\":2}],\"seed\":5}\n\
                   {\"op\":\"update\",\"graph\":\"g-6ba48fd5366326d0\",\"ops\":[{\"kind\":\"add_edge\",\"u\":1,\"v\":3,\"w\":2}],\"seed\":5}\n\
                   {\"op\":\"stats\"}\n\
                   {\"op\":\"shutdown\"}\n";
    let mut child = pmc()
        .args(["serve", "--no-timing", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmc serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(session.as_bytes())
        .expect("write session");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    assert_golden(
        "serve_session.txt.golden",
        &String::from_utf8(out.stdout).expect("utf-8"),
    );
}
