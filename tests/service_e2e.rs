//! End-to-end tests of `pmc serve` as a black box: spawn the release
//! binary, drive pipelined load/solve/stats/shutdown sessions over
//! stdin/stdout (and one over TCP), and hold the service to its
//! contract — responses in request order, bit-identical results across
//! repeat runs and across `--threads 1` vs `--threads 4`, structured
//! errors for bad frames, and correct re-load behavior after LRU
//! eviction.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn pmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmc"))
}

/// Runs one pipelined serve session: writes `input` from a side thread
/// (so neither pipe can deadlock), reads every response line.
fn serve_session(args: &[&str], input: String) -> Vec<String> {
    let mut child = pmc()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmc serve");
    let mut stdin = child.stdin.take().expect("stdin");
    let stdout = child.stdout.take().expect("stdout");
    let writer = std::thread::spawn(move || {
        stdin.write_all(input.as_bytes()).expect("write session");
    });
    let lines: Vec<String> = BufReader::new(stdout)
        .lines()
        .map(|l| l.expect("read response"))
        .collect();
    writer.join().expect("writer thread");
    let status = child.wait().expect("wait");
    assert!(status.success(), "serve exited with {status}");
    lines
}

/// A family of distinct weighted cycles; cycle k has minimum cut
/// `2 * min_weight` = 2, with one heavy chordless edge to vary digests.
fn graph_body(k: usize) -> String {
    let n = 5 + k;
    let mut s = format!("p cut {n} {n}\n");
    for i in 1..=n {
        let j = i % n + 1;
        let w = if i == 1 { 3 + k } else { 1 };
        s.push_str(&format!("e {i} {j} {w}\n"));
    }
    s
}

fn load_frame(body: &str) -> String {
    format!(
        "{{\"op\":\"load\",\"body\":\"{}\"}}",
        body.replace('\n', "\\n")
    )
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("{key} value in {line}"));
    rest[..end].trim_matches('"')
}

/// The acceptance workload: 12 cached graphs, 120 mixed solve requests
/// (3 solvers, varying seeds, single and batch frames).
fn acceptance_session() -> (String, usize, usize) {
    let graphs = 12;
    let bodies: Vec<String> = (0..graphs).map(graph_body).collect();
    // Load everything first; ids are content hashes, derivable by any
    // client, but we run a first session to discover them instead of
    // reimplementing the hash here.
    let loads: String = bodies.iter().map(|b| load_frame(b) + "\n").collect();
    let id_lines = serve_session(&["--no-timing"], loads.clone());
    let ids: Vec<String> = id_lines
        .iter()
        .map(|l| field(l, "id").to_string())
        .collect();
    assert_eq!(ids.len(), graphs);

    let mut session = loads;
    let mut solves = 0;
    for r in 0..120 {
        let solver = ["paper", "sw", "quadratic"][r % 3];
        let seed = 7 + (r as u64) * 13 % 31;
        if r % 10 == 9 {
            // Every tenth request solves a batch of three ids at once.
            session.push_str(&format!(
                "{{\"op\":\"solve\",\"graphs\":[\"{}\",\"{}\",\"{}\"],\"solver\":\"{solver}\",\"seed\":{seed}}}\n",
                ids[r % graphs],
                ids[(r + 1) % graphs],
                ids[(r + 2) % graphs],
            ));
        } else {
            session.push_str(&format!(
                "{{\"op\":\"solve\",\"graph\":\"{}\",\"solver\":\"{solver}\",\"seed\":{seed}}}\n",
                ids[r % graphs]
            ));
        }
        solves += 1;
    }
    session.push_str("{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n");
    (session, graphs, solves)
}

#[test]
fn pipelined_session_is_deterministic_across_runs_and_thread_counts() {
    let (session, graphs, solves) = acceptance_session();
    // Two identical runs, then the same session at width 4: every
    // response byte must match (timing suppressed with --no-timing).
    let run1 = serve_session(&["--no-timing", "--threads", "1"], session.clone());
    let run2 = serve_session(&["--no-timing", "--threads", "1"], session.clone());
    let run4 = serve_session(&["--no-timing", "--threads", "4"], session.clone());
    assert_eq!(run1.len(), graphs + solves + 2);
    assert_eq!(run1, run2, "repeat run diverged");
    // The stats frame legitimately differs across widths (the `threads`
    // and pool counters change); every solve/load/shutdown byte may not.
    let volatile = run1.len() - 2; // index of the stats response
    assert_eq!(
        run1[..volatile],
        run4[..volatile],
        "thread width changed results"
    );
    assert_eq!(run1.last(), run4.last(), "shutdown response diverged");

    // Spot-check shape: every solve response is ok and carries digests.
    for line in &run1[graphs..volatile] {
        assert!(line.starts_with("{\"ok\":true,\"op\":\"solve\""), "{line}");
        assert!(line.contains("\"digest\":\"p-"), "{line}");
        assert!(line.contains("\"micros\":0"), "{line}");
    }
    // And the stats response accounted for the whole session.
    let stats = &run1[volatile];
    assert_eq!(field(stats, "solve"), "120");
    assert_eq!(field(stats, "load"), "12");
    assert_eq!(field(stats, "errors"), "0");
    // 108 single + 12 batch-of-3 solves.
    assert_eq!(field(stats, "solves"), "144");
}

#[test]
fn session_with_timing_still_returns_identical_values() {
    // Without --no-timing the micros fields vary; values and digests may
    // not. Normalize timing away and compare two runs.
    let (session, _, _) = acceptance_session();
    let normalize = |lines: Vec<String>| -> Vec<String> {
        lines
            .into_iter()
            .map(|l| {
                let mut out = String::with_capacity(l.len());
                let mut rest = l.as_str();
                while let Some(i) = rest.find("\"micros\":") {
                    let (head, tail) = rest.split_at(i);
                    out.push_str(head);
                    out.push_str("\"micros\":0");
                    let tail = &tail["\"micros\":".len()..];
                    let end = tail.find([',', '}']).unwrap_or(tail.len());
                    rest = &tail[end..];
                }
                out.push_str(rest);
                out
            })
            .filter(|l| !l.contains("\"op\":\"stats\""))
            .collect()
    };
    let a = normalize(serve_session(&["--threads", "2"], session.clone()));
    let b = normalize(serve_session(&["--threads", "2"], session.clone()));
    assert_eq!(a, b);
}

#[test]
fn cache_eviction_forces_reload_and_reload_heals() {
    // Capacity 3, five graphs: the two least-recently-used fall out.
    let bodies: Vec<String> = (0..5).map(graph_body).collect();
    let loads: String = bodies.iter().map(|b| load_frame(b) + "\n").collect();
    // One shard: this test pins global LRU ordering, which sharding
    // would redistribute across per-shard budgets.
    let flags = &["--no-timing", "--cache-graphs", "3", "--cache-shards", "1"];
    let ids: Vec<String> = serve_session(flags, loads.clone())
        .iter()
        .map(|l| field(l, "id").to_string())
        .collect();

    let mut session = loads;
    // Graphs 0 and 1 were evicted by 2..5; solving them must miss.
    session.push_str(&format!("{{\"op\":\"solve\",\"graph\":\"{}\"}}\n", ids[0]));
    // Re-load heals under the same content id, then the solve works.
    session.push_str(&load_frame(&bodies[0]));
    session.push('\n');
    session.push_str(&format!("{{\"op\":\"solve\",\"graph\":\"{}\"}}\n", ids[0]));
    session.push_str("{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n");
    let lines = serve_session(flags, session);

    assert_eq!(lines.len(), 5 + 5);
    let miss = &lines[5];
    assert!(miss.starts_with("{\"ok\":false"), "{miss}");
    assert_eq!(field(miss, "kind"), "graph_not_loaded");
    assert!(miss.contains(&ids[0]), "{miss}");
    let reload = &lines[6];
    assert_eq!(field(reload, "id"), ids[0], "content id must be stable");
    assert_eq!(field(reload, "cached"), "false", "it was really gone");
    assert!(
        lines[7].starts_with("{\"ok\":true,\"op\":\"solve\""),
        "{}",
        lines[7]
    );
    let stats = &lines[8];
    assert_eq!(field(stats, "evictions"), "3"); // 2 initial + 1 on re-load
    assert_eq!(field(stats, "misses"), "1");
}

#[test]
fn malformed_frames_get_structured_errors_in_order() {
    let body = graph_body(0);
    let session = format!(
        "not json at all\n{}\n{{\"op\":\"frobnicate\"}}\n{{\"op\":\"solve\",\"graph\":\"g-0000000000000000\"}}\n{{\"op\":\"solve\",\"graph\":\"x\",\"solver\":\"nope\"}}\n{{\"op\":\"shutdown\"}}\n",
        load_frame(&body)
    );
    let lines = serve_session(&["--no-timing"], session);
    assert_eq!(lines.len(), 6);
    assert_eq!(field(&lines[0], "kind"), "json");
    assert!(
        lines[1].starts_with("{\"ok\":true,\"op\":\"load\""),
        "{}",
        lines[1]
    );
    assert_eq!(field(&lines[2], "kind"), "request");
    assert!(lines[2].contains("frobnicate"), "{}", lines[2]);
    assert_eq!(field(&lines[3], "kind"), "graph_not_loaded");
    assert_eq!(field(&lines[4], "kind"), "solver");
    assert!(
        lines[5].starts_with("{\"ok\":true,\"op\":\"shutdown\""),
        "{}",
        lines[5]
    );
}

#[test]
fn eof_without_shutdown_exits_cleanly() {
    let lines = serve_session(&["--no-timing"], load_frame(&graph_body(1)) + "\n");
    assert_eq!(lines.len(), 1);
    assert!(lines[0].starts_with("{\"ok\":true,\"op\":\"load\""));
}

#[test]
fn tcp_listener_round_trip() {
    let mut child = pmc()
        .args(["serve", "--no-timing", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pmc serve --listen");
    let stdout = child.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner");
    let addr = banner
        .strip_prefix("listening: ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .trim()
        .to_string();

    let mut client = std::net::TcpStream::connect(&addr).expect("connect");
    let body = graph_body(2);
    writeln!(client, "{}", load_frame(&body)).expect("send load");
    let mut conn = BufReader::new(client.try_clone().expect("clone socket"));
    let mut line = String::new();
    conn.read_line(&mut line).expect("load reply");
    let id = field(line.trim(), "id").to_string();
    line.clear();
    writeln!(
        client,
        "{{\"op\":\"solve\",\"graph\":\"{id}\",\"solver\":\"sw\"}}"
    )
    .expect("send");
    conn.read_line(&mut line).expect("solve reply");
    assert_eq!(field(line.trim(), "value"), "2", "{line}");
    line.clear();
    writeln!(client, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    conn.read_line(&mut line).expect("shutdown reply");
    assert!(
        line.starts_with("{\"ok\":true,\"op\":\"shutdown\""),
        "{line}"
    );
    let status = child.wait().expect("wait");
    assert!(status.success(), "listener exited with {status}");
}
