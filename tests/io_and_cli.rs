//! Integration tests for the file formats and the `pmc` command-line tool
//! (the binary is exercised through `CARGO_BIN_EXE_pmc`).

use parallel_mincut::graph::{gen, io};
use std::io::Write;
use std::process::Command;

fn pmc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmc"))
}

fn write_temp(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents).unwrap();
    path
}

#[test]
fn dimacs_roundtrip_through_files() {
    let (g, value, _) = gen::planted_bisection(10, 12, 20, 3, 6, 5);
    let mut buf = Vec::new();
    io::write_dimacs(&g, &mut buf).unwrap();
    let path = write_temp("roundtrip.dimacs", &buf);
    let h = io::read_path(&path).unwrap();
    assert_eq!(g.edges(), h.edges());
    let cut = parallel_mincut::minimum_cut(&h, &Default::default()).unwrap();
    assert_eq!(cut.value, value);
}

#[test]
fn cli_gen_info_mincut_verify_pipeline() {
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("cli_pipeline.dimacs");
    let file_s = file.to_str().unwrap();

    let out = pmc()
        .args([
            "gen", "planted", "15", "15", "25", "3", "8", "9", "--out", file_s,
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let out = pmc().args(["info", file_s]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("vertices: 30"), "{text}");
    assert!(text.contains("connected: true"), "{text}");

    let out = pmc()
        .args(["mincut", file_s, "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let value: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("value: "))
        .expect("value line")
        .parse()
        .unwrap();

    let out = pmc()
        .args(["verify", file_s, &value.to_string()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "verify rejected the computed value {value}: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // And a wrong value must be rejected.
    let out = pmc()
        .args(["verify", file_s, &(value + 1).to_string()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_reads_edge_lists_from_stdin() {
    use std::process::Stdio;
    let mut child = pmc()
        .args(["mincut", "-", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"0 1 5\n1 2 1\n2 0 2\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("value: 3"), "{text}"); // isolate vertex 2: 1+2
}

#[test]
fn cli_rejects_malformed_input() {
    let path = write_temp("bad.dimacs", b"p cut 3 1\ne 1 99 2\n");
    let out = pmc()
        .args(["mincut", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn cli_gen_families_produce_parseable_output() {
    for fam in [
        vec!["gen", "gnm", "20", "40"],
        vec!["gen", "cycle", "12", "3"],
        vec!["gen", "grid", "4", "5"],
        vec!["gen", "barbell", "4"],
        vec!["gen", "complete", "8"],
        vec!["gen", "hypercube", "4"],
        vec!["gen", "torus", "3", "4"],
        vec!["gen", "wheel", "7"],
        vec!["gen", "community_ring", "3", "5"],
    ] {
        let out = pmc().args(&fam).output().unwrap();
        assert!(out.status.success(), "{fam:?}");
        let g = io::read_dimacs(&out.stdout[..]).unwrap();
        assert!(g.n() >= 2, "{fam:?}");
    }
}

#[test]
fn cli_gen_rejects_invalid_parameters_without_panicking() {
    for fam in [
        vec!["gen", "torus", "2", "2"],
        vec!["gen", "gnm", "10", "2"],
        vec!["gen", "hypercube", "40"],
        vec!["gen", "wheel", "2"],
    ] {
        let out = pmc().args(&fam).output().unwrap();
        assert!(!out.status.success(), "{fam:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.starts_with("pmc: gen"), "{fam:?}: {err}");
        assert!(!err.contains("backtrace"), "{fam:?}: {err}");
    }
}

#[test]
fn cli_gen_known_cut_families_verify() {
    // The newly exposed families carry construction-proved cuts: generate
    // through the CLI, then `pmc verify` the known value end to end.
    let dir = std::env::temp_dir().join("pmc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, args, want) in [
        ("hypercube", vec!["gen", "hypercube", "4"], 4u64),
        ("torus", vec!["gen", "torus", "4", "5"], 4),
        ("wheel", vec!["gen", "wheel", "11"], 3),
        ("community", vec!["gen", "community_ring", "4", "5"], 2),
    ] {
        let file = dir.join(format!("gen_{name}.dimacs"));
        let file_s = file.to_str().unwrap().to_string();
        let mut full = args.clone();
        full.push("--out");
        full.push(&file_s);
        let out = pmc().args(&full).output().unwrap();
        assert!(out.status.success(), "{name}: {out:?}");
        let out = pmc()
            .args(["verify", &file_s, &want.to_string()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: verify {want} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn cli_suite_smoke_and_json() {
    let out = pmc()
        .args([
            "suite",
            "--filter",
            "smoke",
            "--seeds",
            "1",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "suite failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("conformance: OK"), "{text}");

    let out = pmc()
        .args(["suite", "--filter", "torus", "--seeds", "1", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"disagreement_count\": 0"), "{text}");

    // A filter matching nothing is an error, not an empty success.
    let out = pmc()
        .args(["suite", "--filter", "no-such-family"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // `pmc scenarios` lists the corpus.
    let out = pmc().args(["scenarios"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("hypercube/d4") && text.contains("known(4)"),
        "{text}"
    );
}
