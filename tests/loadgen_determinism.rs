//! `pmc loadgen` determinism: the request trace is a pure function of
//! (seed, connection index).
//!
//! The workload generator predicts every response — including the
//! content-addressed ids the server will mint — from a client-side graph
//! replica, so the full request stream can be written out *before* any
//! network traffic. These tests byte-compare that trace:
//!
//! * the same seed produces an identical trace across repeat runs;
//! * a connection's stream does not depend on how many other connections
//!   exist (`--connections 1` vs `--connections 4` agree on `c0`).
//!
//! Runs ride against a spawned `--no-timing` child serve, so the exit
//! status doubles as an end-to-end check: the binary exits non-zero on
//! any protocol error or response/script mismatch.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pmc_loadgen_det_{}_{name}", std::process::id()));
    p
}

/// Runs `pmc loadgen` with the given extra flags, writing the request
/// trace to `trace_path`, and returns the trace bytes.
fn run_loadgen(trace_path: &PathBuf, extra: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_pmc"))
        .arg("loadgen")
        .args(["--seed", "1234", "--requests", "25", "--no-timing"])
        .args(["--trace", trace_path.to_str().expect("utf-8 temp path")])
        .args(extra)
        .output()
        .expect("run pmc loadgen");
    assert!(
        out.status.success(),
        "loadgen exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(trace_path).expect("read trace");
    let _ = std::fs::remove_file(trace_path);
    bytes
}

#[test]
fn repeat_runs_produce_identical_traces() {
    let a = run_loadgen(&tmp("repeat_a"), &["--connections", "2"]);
    let b = run_loadgen(&tmp("repeat_b"), &["--connections", "2"]);
    assert!(!a.is_empty(), "trace is empty");
    assert_eq!(a, b, "same seed produced different request traces");
}

#[test]
fn connection_stream_is_independent_of_connection_count() {
    let solo = run_loadgen(&tmp("conn1"), &["--connections", "1"]);
    let four = run_loadgen(&tmp("conn4"), &["--connections", "4"]);

    let c0_of = |bytes: &[u8]| -> Vec<u8> {
        let text = std::str::from_utf8(bytes).expect("trace is utf-8");
        text.lines()
            .filter(|l| l.starts_with("c0 "))
            .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
            .collect()
    };
    let solo_c0 = c0_of(&solo);
    let four_c0 = c0_of(&four);
    assert!(
        !solo_c0.is_empty(),
        "no c0 lines in single-connection trace"
    );
    assert_eq!(
        solo_c0, four_c0,
        "connection 0's stream changed when more connections were added"
    );

    // And the other connections actually diverge: each connection gets
    // its own seeded stream, not a copy of connection 0's.
    let text = std::str::from_utf8(&four).expect("trace is utf-8");
    for conn in 1..4 {
        let prefix = format!("c{conn} ");
        let stream: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .map(|l| &l[prefix.len()..])
            .collect();
        assert!(!stream.is_empty(), "no lines for connection {conn}");
        let c0: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("c0 "))
            .map(|l| &l[3..])
            .collect();
        assert_ne!(stream, c0, "connection {conn} duplicates connection 0");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let path_a = tmp("seed_a");
    let out = Command::new(env!("CARGO_BIN_EXE_pmc"))
        .arg("loadgen")
        .args([
            "--seed",
            "1",
            "--requests",
            "10",
            "--connections",
            "1",
            "--no-timing",
        ])
        .args(["--trace", path_a.to_str().unwrap()])
        .output()
        .expect("run pmc loadgen");
    assert!(out.status.success(), "seed-1 run failed");
    let a = std::fs::read(&path_a).expect("read trace");
    let _ = std::fs::remove_file(&path_a);

    let path_b = tmp("seed_b");
    let out = Command::new(env!("CARGO_BIN_EXE_pmc"))
        .arg("loadgen")
        .args([
            "--seed",
            "2",
            "--requests",
            "10",
            "--connections",
            "1",
            "--no-timing",
        ])
        .args(["--trace", path_b.to_str().unwrap()])
        .output()
        .expect("run pmc loadgen");
    assert!(out.status.success(), "seed-2 run failed");
    let b = std::fs::read(&path_b).expect("read trace");
    let _ = std::fs::remove_file(&path_b);

    assert_ne!(a, b, "different seeds produced identical traces");
}
