//! Property tests for the `pmc serve` wire codec: every request and
//! response variant, over randomized payloads, must survive
//! serialize → parse exactly; and the request parser must answer seeded
//! random mutations of valid frames (in the spirit of `tests/io_fuzz.rs`)
//! with structured protocol errors — never panics, never unbounded
//! allocations (frame length is capped before buffering).

use std::io::BufReader;

use parallel_mincut::service::protocol::{
    read_frame, AdmissionCounters, CacheCounters, DynamicCounters, ErrorKind, FaultCounters,
    JournalCounters, LatencyCounters, PoolCounters, RequestCounters, UpdateMode, UpdateOp,
    VerbLatency, MAX_FRAME_BYTES,
};
use parallel_mincut::service::{
    LoadSource, ProtocolError, Request, Response, SolveOutcome, StatsSnapshot,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A string that stresses the escaper: quotes, backslashes, newlines,
/// control bytes, multibyte characters.
fn gen_string(rng: &mut SmallRng) -> String {
    let alphabet: [&str; 12] = [
        "a", "Z", "0", "\"", "\\", "\n", "\t", "\r", "\u{1}", "π", "graphe", " ",
    ];
    let len = rng.gen_range(0..20);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn gen_id(rng: &mut SmallRng) -> String {
    format!("g-{:016x}", rng.gen::<u64>())
}

fn gen_update_ops(rng: &mut SmallRng) -> Vec<UpdateOp> {
    let k = rng.gen_range(1..6);
    (0..k)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => UpdateOp::AddEdge {
                u: rng.gen(),
                v: rng.gen(),
                w: rng.gen(),
            },
            1 => UpdateOp::RemoveEdge {
                u: rng.gen(),
                v: rng.gen(),
            },
            _ => UpdateOp::ReweightEdge {
                u: rng.gen(),
                v: rng.gen(),
                w: rng.gen(),
            },
        })
        .collect()
}

fn gen_deadline(rng: &mut SmallRng) -> Option<u64> {
    rng.gen_bool(0.5).then(|| rng.gen())
}

fn gen_request(rng: &mut SmallRng) -> Request {
    match rng.gen_range(0..7u32) {
        0 => Request::Load(LoadSource::Body(gen_string(rng))),
        1 => Request::Load(LoadSource::Path(gen_string(rng))),
        2 => Request::Solve {
            graphs: vec![gen_id(rng)],
            solver: gen_string(rng),
            seed: rng.gen(),
            deadline_ms: gen_deadline(rng),
        },
        3 => {
            let k = rng.gen_range(2..8);
            Request::Solve {
                graphs: (0..k).map(|_| gen_id(rng)).collect(),
                solver: "paper".into(),
                seed: rng.gen(),
                deadline_ms: gen_deadline(rng),
            }
        }
        4 => Request::Update {
            graph: gen_id(rng),
            ops: gen_update_ops(rng),
            seed: rng.gen(),
            deadline_ms: gen_deadline(rng),
        },
        5 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn gen_response(rng: &mut SmallRng) -> Response {
    match rng.gen_range(0..6u32) {
        0 => Response::Loaded {
            id: gen_id(rng),
            n: rng.gen(),
            m: rng.gen(),
            cached: rng.gen_bool(0.5),
        },
        1 => {
            let k = rng.gen_range(0..6);
            Response::Solved {
                results: (0..k)
                    .map(|_| SolveOutcome {
                        graph: gen_id(rng),
                        solver: gen_string(rng),
                        seed: rng.gen(),
                        value: rng.gen(),
                        digest: format!("p-{:016x}", rng.gen::<u64>()),
                        micros: u128::from(rng.gen::<u64>()),
                    })
                    .collect(),
            }
        }
        2 => Response::Stats(Box::new(StatsSnapshot {
            uptime_micros: u128::from(rng.gen::<u64>()),
            threads: rng.gen(),
            requests: RequestCounters {
                load: rng.gen(),
                solve: rng.gen(),
                update: rng.gen(),
                stats: rng.gen(),
                errors: rng.gen(),
            },
            cache: CacheCounters {
                capacity: rng.gen(),
                capacity_bytes: rng.gen(),
                graphs: rng.gen(),
                shards: {
                    let k = rng.gen_range(1..5);
                    (0..k).map(|_| rng.gen()).collect()
                },
                bytes: rng.gen(),
                snapshots: rng.gen(),
                hits: rng.gen(),
                misses: rng.gen(),
                snapshot_hits: rng.gen(),
                snapshot_misses: rng.gen(),
                evictions: rng.gen(),
            },
            admission: AdmissionCounters {
                max_inflight: rng.gen(),
                admitted: rng.gen(),
                rejected: rng.gen(),
                inflight: rng.gen(),
            },
            pool: PoolCounters {
                created: rng.gen(),
                checkouts: rng.gen(),
                available: rng.gen(),
            },
            dynamic: DynamicCounters {
                incremental: rng.gen(),
                full: rng.gen(),
            },
            latency: {
                let mut verb = || VerbLatency {
                    count: rng.gen(),
                    total_us: rng.gen(),
                    max_us: rng.gen(),
                };
                LatencyCounters {
                    load: verb(),
                    solve: verb(),
                    update: verb(),
                }
            },
            faults: FaultCounters {
                panics: rng.gen(),
                timeouts: rng.gen(),
                injected: rng.gen(),
            },
            journal: JournalCounters {
                enabled: rng.gen(),
                records: rng.gen(),
                bytes: rng.gen(),
                replayed: rng.gen(),
                truncated: rng.gen(),
                errors: rng.gen(),
            },
            solves: rng.gen(),
        })),
        3 => Response::Updated {
            id: gen_id(rng),
            from: gen_id(rng),
            n: rng.gen(),
            m: rng.gen(),
            value: rng.gen(),
            digest: format!("p-{:016x}", rng.gen::<u64>()),
            mode: UpdateMode::ALL[rng.gen_range(0..UpdateMode::ALL.len())],
            reswept: rng.gen(),
            micros: u128::from(rng.gen::<u64>()),
        },
        4 => Response::Shutdown { served: rng.gen() },
        _ => {
            let kind = ErrorKind::ALL[rng.gen_range(0..ErrorKind::ALL.len())];
            let mut e = ProtocolError::new(kind, gen_string(rng));
            if rng.gen_bool(0.5) {
                e = e.with_retry_after(rng.gen());
            }
            Response::Error(e)
        }
    }
}

#[test]
fn request_codec_round_trips_generated_payloads() {
    let mut rng = SmallRng::seed_from_u64(0x51DE);
    for round in 0..500 {
        let req = gen_request(&mut rng);
        let frame = req.to_frame();
        assert!(
            !frame.contains('\n'),
            "round {round}: frame spans lines: {frame}"
        );
        let back = Request::parse_frame(&frame)
            .unwrap_or_else(|e| panic!("round {round}: {frame} -> {e}"));
        assert_eq!(back, req, "round {round}: {frame}");
    }
}

#[test]
fn response_codec_round_trips_generated_payloads() {
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    for round in 0..500 {
        let resp = gen_response(&mut rng);
        let frame = resp.to_frame();
        assert!(
            !frame.contains('\n'),
            "round {round}: frame spans lines: {frame}"
        );
        let back = Response::parse_frame(&frame)
            .unwrap_or_else(|e| panic!("round {round}: {frame} -> {e}"));
        assert_eq!(back, resp, "round {round}: {frame}");
    }
}

#[test]
fn framed_sessions_round_trip_through_the_reader() {
    // Many frames on one wire, read back one by one.
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let requests: Vec<Request> = (0..50).map(|_| gen_request(&mut rng)).collect();
    let wire: String = requests
        .iter()
        .map(|r| r.to_frame() + "\n")
        .collect::<String>();
    let mut reader = BufReader::new(wire.as_bytes());
    for (i, want) in requests.iter().enumerate() {
        let line = read_frame(&mut reader)
            .unwrap()
            .unwrap_or_else(|| panic!("frame {i}: premature EOF"))
            .unwrap_or_else(|e| panic!("frame {i}: {e}"));
        assert_eq!(&Request::parse_frame(&line).unwrap(), want, "frame {i}");
    }
    assert!(read_frame(&mut reader).unwrap().is_none());
}

/// Seeded-mutation fuzz of the request parser: flips, truncations,
/// duplications, and hostile-token splices of valid frames must all
/// return (Ok or structured Err), never panic.
#[test]
fn seeded_mutation_fuzz_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xFEE1);
    let bases: Vec<String> = (0..12).map(|_| gen_request(&mut rng).to_frame()).collect();
    let hostile: [&str; 8] = [
        "{\"op\":\"solve\"",
        "\\u0000",
        "\"graphs\":[[[[[[",
        "{\"op\":\"load\",\"body\":\"p cut 99999999999 1\"}",
        "\u{FFFD}",
        "1e309",
        "{}",
        "\"op\":null",
    ];
    for round in 0..2000 {
        let base = &bases[round % bases.len()];
        let mut mutant = base.clone().into_bytes();
        match rng.gen_range(0..4u32) {
            0 => {
                // Flip a byte to a random printable-ish character.
                let i = rng.gen_range(0..mutant.len());
                mutant[i] = rng.gen_range(0x20..0x7Fu32) as u8;
            }
            1 => {
                // Truncate mid-frame (possibly mid-escape, mid-UTF-8).
                let i = rng.gen_range(0..mutant.len());
                mutant.truncate(i);
            }
            2 => {
                // Duplicate a slice of the frame.
                let i = rng.gen_range(0..mutant.len());
                let j = rng.gen_range(i..mutant.len());
                let slice: Vec<u8> = mutant[i..j].to_vec();
                mutant.extend_from_slice(&slice);
            }
            _ => {
                // Splice in a hostile token at a random offset.
                let t = hostile[rng.gen_range(0..hostile.len())];
                let i = rng.gen_range(0..=mutant.len());
                mutant.splice(i..i, t.bytes());
            }
        }
        // The parser sees frames as &str; non-UTF-8 mutants are the frame
        // reader's job (covered below), so round-trip through lossy.
        let text = String::from_utf8_lossy(&mutant);
        if let Err(e) = Request::parse_frame(&text) {
            assert!(
                matches!(e.kind, ErrorKind::Json | ErrorKind::Request),
                "round {round}: unexpected kind for {text:?}: {e}"
            );
            assert!(!e.detail.is_empty(), "round {round}");
            assert!(!e.to_string().is_empty(), "round {round}");
        }
    }
}

/// The frame reader itself under hostile wires: oversized lines, raw
/// bytes, missing trailing newlines — always a structured result and
/// always recovery to the next line.
#[test]
fn frame_reader_survives_hostile_wires() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for round in 0..50 {
        let mut wire: Vec<u8> = Vec::new();
        let frames = rng.gen_range(1..6);
        for _ in 0..frames {
            match rng.gen_range(0..4u32) {
                0 => wire.extend_from_slice(b"{\"op\":\"stats\"}\n"),
                1 => {
                    // Random bytes (frequently invalid UTF-8).
                    let len = rng.gen_range(0..64);
                    for _ in 0..len {
                        let b = rng.gen_range(0..=255u32) as u8;
                        if b != b'\n' {
                            wire.push(b);
                        }
                    }
                    wire.push(b'\n');
                }
                2 => {
                    // An empty line (skippable, not answerable).
                    wire.push(b'\n');
                }
                _ => {
                    // A frame without a trailing newline (EOF-terminated).
                    wire.extend_from_slice(b"{\"op\":\"shutdown\"}");
                }
            }
        }
        let mut reader = BufReader::new(&wire[..]);
        let mut guard = 0;
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            guard += 1;
            assert!(guard <= frames + 1, "round {round}: reader did not advance");
            if let Err(e) = frame {
                assert_eq!(e.kind, ErrorKind::Frame, "round {round}");
            }
        }
    }
}

#[test]
fn exactly_max_frame_bytes_is_accepted() {
    // A frame of exactly MAX_FRAME_BYTES parses — LF- or CRLF-terminated
    // — and one byte more errors without eating the following frame.
    // (Covers the off-by-ones between the take() limit and the cap.)
    let pad = MAX_FRAME_BYTES - r#"{"op":"load","body":""}"#.len();
    let frame = format!("{{\"op\":\"load\",\"body\":\"{}\"}}", "x".repeat(pad));
    assert_eq!(frame.len(), MAX_FRAME_BYTES);
    let wire = format!("{frame}\n{frame}\r\n{frame}x\n{frame}x\r\n{{\"op\":\"stats\"}}\n");
    let mut reader = BufReader::new(wire.as_bytes());
    assert!(read_frame(&mut reader).unwrap().unwrap().is_ok(), "LF");
    assert!(read_frame(&mut reader).unwrap().unwrap().is_ok(), "CRLF");
    for term in ["LF", "CRLF"] {
        let over = read_frame(&mut reader).unwrap().unwrap().unwrap_err();
        assert_eq!(over.kind, ErrorKind::Frame, "{term}");
    }
    let tail = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(tail, "{\"op\":\"stats\"}", "reader must resync exactly");
    assert!(read_frame(&mut reader).unwrap().is_none());
}
