//! Concurrency stress tests for the sharded `pmc serve` store: ≥8 TCP
//! clients fire mixed load/solve/update/stats traffic at one in-process
//! [`Service`], and the suite holds it to three promises — no lost
//! entries (the final stats frame accounts for every graph), consistent
//! aggregated counters (per-shard occupancy sums to the graph total,
//! admission permits all drain), and value parity (each client's
//! response stream, stats frames aside, is byte-identical to a solo
//! replay of the same session on a fresh single-client service).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};

use parallel_mincut::service::{Service, ServiceConfig};

const CLIENTS: usize = 8;

fn stress_config() -> ServiceConfig {
    ServiceConfig {
        threads: 2,
        cache_graphs: 64,
        cache_bytes: 0,
        cache_shards: 4,
        // Roomy budget: this test is about shard consistency, not
        // rejection (rejection has its own deterministic test below).
        max_inflight: 1024,
        timing: false,
        ..ServiceConfig::default()
    }
}

/// Distinct weighted cycles: client `c`'s graph `j` has `5 + 3c + j`
/// vertices, so no two clients ever share a content id and every load
/// deterministically answers `cached:false`.
fn body(client: usize, j: usize) -> String {
    let n = 5 + 3 * client + j;
    let mut s = format!("p cut {n} {n}\n");
    for i in 1..=n {
        let w = if i == 1 { 4 } else { 1 };
        s.push_str(&format!("e {i} {} {w}\n", i % n + 1));
    }
    s
}

fn load_frame(body: &str) -> String {
    format!(
        "{{\"op\":\"load\",\"body\":\"{}\"}}",
        body.replace('\n', "\\n")
    )
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len()..];
    let end = rest
        .find([',', '}', ']'])
        .unwrap_or_else(|| panic!("{key} value in {line}"));
    rest[..end].trim_matches('"')
}

/// One interactive frame exchange: write the request line, read the
/// response line.
fn roundtrip<W: Write, R: BufRead>(w: &mut W, r: &mut R, frame: &str) -> String {
    writeln!(w, "{frame}").expect("write frame");
    w.flush().expect("flush frame");
    let mut line = String::new();
    r.read_line(&mut line).expect("read response");
    assert!(line.ends_with('\n'), "truncated response: {line:?}");
    line.truncate(line.len() - 1);
    line
}

/// Drives one client's mixed session over an established exchange and
/// returns every response line in order. The session is id-driven
/// (updates re-key), so it must run interactively.
fn run_session<W: Write, R: BufRead>(client: usize, w: &mut W, r: &mut R) -> Vec<String> {
    let mut lines = Vec::new();
    let mut ids = Vec::new();
    for j in 0..3 {
        let resp = roundtrip(w, r, &load_frame(&body(client, j)));
        assert_eq!(field(&resp, "cached"), "false", "client {client}: {resp}");
        ids.push(field(&resp, "id").to_string());
        lines.push(resp);
    }
    let resp = roundtrip(
        w,
        r,
        &format!(
            "{{\"op\":\"solve\",\"graphs\":[\"{}\",\"{}\",\"{}\"],\"solver\":\"paper\",\"seed\":7}}",
            ids[0], ids[1], ids[2]
        ),
    );
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"solve\""), "{resp}");
    lines.push(resp);
    // A stats frame mid-stream: legitimately racy under concurrency, so
    // parity filters it, but it must answer and parse.
    let resp = roundtrip(w, r, "{\"op\":\"stats\"}");
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"stats\""), "{resp}");
    lines.push(resp);
    let resp = roundtrip(
        w,
        r,
        &format!(
            "{{\"op\":\"solve\",\"graph\":\"{}\",\"solver\":\"sw\",\"seed\":3}}",
            ids[1]
        ),
    );
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"solve\""), "{resp}");
    lines.push(resp);
    // Two chained updates on graph 0: each re-keys, so the second must
    // address the id the first returned.
    let resp = roundtrip(
        w,
        r,
        &format!(
            "{{\"op\":\"update\",\"graph\":\"{}\",\"ops\":[{{\"kind\":\"reweight_edge\",\"u\":1,\"v\":2,\"w\":9}}],\"seed\":5}}",
            ids[0]
        ),
    );
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"update\""), "{resp}");
    let rekeyed = field(&resp, "id").to_string();
    lines.push(resp);
    let resp = roundtrip(
        w,
        r,
        &format!(
            "{{\"op\":\"update\",\"graph\":\"{rekeyed}\",\"ops\":[{{\"kind\":\"add_edge\",\"u\":1,\"v\":3,\"w\":2}}],\"seed\":5}}"
        ),
    );
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"update\""), "{resp}");
    let rekeyed = field(&resp, "id").to_string();
    lines.push(resp);
    let resp = roundtrip(
        w,
        r,
        &format!("{{\"op\":\"solve\",\"graph\":\"{rekeyed}\",\"solver\":\"paper\",\"seed\":11}}"),
    );
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"solve\""), "{resp}");
    lines.push(resp);
    lines
}

/// Stats frames race against other clients; everything else must be
/// deterministic.
fn without_stats(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| !l.contains("\"op\":\"stats\""))
        .cloned()
        .collect()
}

#[test]
fn concurrent_mixed_traffic_matches_single_threaded_replay() {
    let service = Service::new(&stress_config());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let sessions: Vec<Vec<String>> = std::thread::scope(|scope| {
        let service = &service;
        let listener = &listener;
        let server = scope.spawn(move || service.serve_listener(listener));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let lines = run_session(c, &mut writer, &mut reader);
                    // The reader clone shares the fd, so dropping the
                    // writer alone sends no FIN; shut the write half
                    // down explicitly to end the per-connection loop.
                    writer
                        .shutdown(std::net::Shutdown::Write)
                        .expect("shutdown");
                    lines
                })
            })
            .collect();
        let sessions: Vec<Vec<String>> = clients
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        // All clients drained; one last connection reads the aggregate
        // stats and shuts the listener down.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let stats = roundtrip(&mut writer, &mut reader, "{\"op\":\"stats\"}");
        roundtrip(&mut writer, &mut reader, "{\"op\":\"shutdown\"}");
        server.join().expect("server thread").expect("serve");

        // No lost entries: 3 loads per client, and the two re-keying
        // updates replace entries rather than adding them.
        let graphs: u64 = field(&stats, "graphs").parse().unwrap();
        assert_eq!(graphs, (CLIENTS * 3) as u64);
        // Consistent aggregation: per-shard occupancy sums to the total.
        let shard_section = &stats[stats.find("\"shards\":[").expect("shards array")..];
        let shard_list = &shard_section["\"shards\":[".len()..shard_section.find(']').unwrap()];
        let occupancy: u64 = shard_list
            .split(',')
            .map(|x| x.parse::<u64>().expect("shard occupancy"))
            .sum();
        assert_eq!(occupancy, graphs, "{stats}");
        assert_eq!(shard_list.split(',').count(), 4, "{stats}");
        assert_eq!(field(&stats, "load").parse::<u64>().unwrap(), 24);
        assert_eq!(field(&stats, "solve").parse::<u64>().unwrap(), 24);
        assert_eq!(field(&stats, "update").parse::<u64>().unwrap(), 16);
        assert_eq!(field(&stats, "errors").parse::<u64>().unwrap(), 0);
        // 8 × (batch of 3 + 2 singles) individual solves delivered.
        assert_eq!(field(&stats, "solves").parse::<u64>().unwrap(), 40);
        // Admission: every request admitted, every permit returned.
        assert_eq!(field(&stats, "rejected").parse::<u64>().unwrap(), 0);
        assert_eq!(field(&stats, "inflight").parse::<u64>().unwrap(), 0);
        assert_eq!(field(&stats, "admitted").parse::<u64>().unwrap(), 40);
        sessions
    });

    // Value parity: each client's stream must be byte-identical to the
    // same session replayed alone against a fresh service over stdio.
    for (c, lines) in sessions.iter().enumerate() {
        let solo_service = Service::new(&stress_config());
        let solo = std::thread::scope(|scope| {
            let (client_end, server_end) = duplex();
            let server = scope.spawn(move || {
                let (r, mut w) = server_end;
                solo_service.serve_stream(BufReader::new(r), &mut w).ok();
            });
            let (r, mut w) = client_end;
            let mut reader = BufReader::new(r);
            let lines = run_session(c, &mut w, &mut reader);
            // The reader still holds a dup of the fd; an explicit
            // half-close is what actually EOFs the solo server.
            w.shutdown(std::net::Shutdown::Write).expect("shutdown");
            server.join().expect("solo server");
            lines
        });
        assert_eq!(
            without_stats(lines),
            without_stats(&solo),
            "client {c} diverged from its solo replay"
        );
    }
}

/// A bidirectional in-memory pipe pair built from two TCP loopback
/// sockets (std has no portable socketpair; a localhost socket is the
/// closest deterministic stand-in).
#[allow(clippy::type_complexity)]
fn duplex() -> ((TcpStream, TcpStream), (TcpStream, TcpStream)) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let a = TcpStream::connect(addr).expect("connect");
    let (b, _) = listener.accept().expect("accept");
    let ar = a.try_clone().expect("clone");
    let br = b.try_clone().expect("clone");
    ((ar, a), (br, b))
}

#[test]
fn saturating_burst_yields_structured_overloaded_not_a_hang() {
    // Budget of 2 worker slots at 4 threads: any 4-wide batch costs 4
    // slots and must be refused with a structured frame — never queued,
    // never a panic — while 1-wide work keeps flowing.
    let service = Service::new(&ServiceConfig {
        threads: 4,
        cache_graphs: 32,
        cache_shards: 4,
        max_inflight: 2,
        timing: false,
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let rejected = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let service = &service;
        let listener = &listener;
        let rejected = &rejected;
        let server = scope.spawn(move || service.serve_listener(listener));
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let mut ids = Vec::new();
                    for j in 0..4 {
                        let resp =
                            roundtrip(&mut writer, &mut reader, &load_frame(&body(c, j)));
                        ids.push(field(&resp, "id").to_string());
                    }
                    // The oversized batch: cost 4 > budget 2, refused
                    // deterministically whatever the interleaving.
                    let resp = roundtrip(
                        &mut writer,
                        &mut reader,
                        &format!(
                            "{{\"op\":\"solve\",\"graphs\":[\"{}\",\"{}\",\"{}\",\"{}\"],\"solver\":\"sw\",\"seed\":1}}",
                            ids[0], ids[1], ids[2], ids[3]
                        ),
                    );
                    assert!(resp.starts_with("{\"ok\":false"), "{resp}");
                    assert_eq!(field(&resp, "kind"), "overloaded", "{resp}");
                    rejected.fetch_add(1, Ordering::Relaxed);
                    // Cost-1 work still flows — though with 8 clients
                    // racing for 2 slots it may transiently be refused
                    // too, so honor the error's advice and retry.
                    let frame = format!(
                        "{{\"op\":\"solve\",\"graph\":\"{}\",\"solver\":\"sw\",\"seed\":1}}",
                        ids[0]
                    );
                    let mut answered = false;
                    for _ in 0..1000 {
                        let resp = roundtrip(&mut writer, &mut reader, &frame);
                        if resp.starts_with("{\"ok\":true,\"op\":\"solve\"") {
                            answered = true;
                            break;
                        }
                        assert_eq!(field(&resp, "kind"), "overloaded", "{resp}");
                        rejected.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    assert!(answered, "client {c}: solve starved past 1000 retries");
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let stats = roundtrip(&mut writer, &mut reader, "{\"op\":\"stats\"}");
        assert_eq!(
            field(&stats, "rejected").parse::<u64>().unwrap(),
            rejected.load(Ordering::Relaxed),
            "{stats}"
        );
        assert_eq!(field(&stats, "inflight").parse::<u64>().unwrap(), 0);
        assert_eq!(field(&stats, "max_inflight").parse::<u64>().unwrap(), 2);
        roundtrip(&mut writer, &mut reader, "{\"op\":\"shutdown\"}");
        server.join().expect("server").expect("serve");
    });
}
